"""repro.obs — structured tracing, metrics, and profiling (opt-in).

Observability for the simulate → train → enforce → evaluate pipeline,
built on three layers:

* **tracing** (:mod:`repro.obs.trace`) — hierarchical wall-clock spans
  (``with obs.span("table1.train", method="kal"): ...``) appended to a
  single JSONL file in the Chrome trace event format, so a whole run
  renders as a flame chart in Perfetto / ``chrome://tracing`` (see
  :func:`repro.obs.trace.export_chrome` for the wrapped-array form the
  viewers load directly).  Spans recorded in forked worker processes
  (``eval.parallel`` pools, ``resilience.supervisor`` attempts) land in
  the same file under their own pid.
* **metrics** (:mod:`repro.obs.metrics`) — a registry of counters,
  gauges, histograms, and series (cache hits/misses, supervisor retries,
  per-epoch losses, C1–C3 residuals, solver nodes) snapshotted to a
  ``metrics.json`` document and rendered by ``repro obs summary``.
* **profiling** (:mod:`repro.obs.profile`) — per-stage cProfile capture
  writing ``.pstats`` archives plus top-N cumulative reports.
* **live status** (:mod:`repro.obs.live`) — periodic mid-run snapshots
  (append-only ``status.jsonl`` + atomically-replaced
  ``status.latest.json``) rendered by the ``repro obs top`` dashboard.
* **events** (:mod:`repro.obs.events`) — a schema-validated JSONL log of
  discrete operational occurrences (respawns, backpressure, SLO
  breaches, checkpoint saves) appended to directly by every process.

Everything is **off by default** and near-free when off: the module-level
flags below gate every entry point, the disabled :func:`span` /
:func:`counter` return shared no-op singletons, and no submodule of this
package is imported until :func:`configure` enables a layer — importing
:mod:`repro` (or any instrumented module) never pays for observability
(pinned by ``tests/obs/test_disabled.py``).

Process model: state is configured in the parent and inherited by forked
children.  The trace writer and metrics registry detect a fork (pid
change) and re-bind, so child events carry the child pid and child
metrics are staged to a ``<metrics>.parts`` sidecar that the parent's
:func:`finish` merges.  Under a ``spawn`` start method children simply
run with observability disabled.
"""

from __future__ import annotations

import atexit
import os
from typing import Any, Union

PathLike = Union[str, "os.PathLike[str]"]

__all__ = [
    "configure",
    "finish",
    "annotate",
    "span",
    "counter",
    "gauge",
    "histogram",
    "series",
    "profile_stage",
    "event",
    "live_tick",
    "live_section",
    "child_flush",
    "enabled",
    "tracing_enabled",
    "metrics_enabled",
    "profiling_enabled",
    "live_enabled",
    "events_enabled",
]

# Fast-path gates: every instrumentation entry point checks one of these
# module globals and returns a shared no-op object when it is False.
_TRACING = False
_METRICS = False
_PROFILING = False
_LIVE = False
_EVENTS = False

#: Pid that called configure(); forked children see a different getpid().
_ROOT_PID: int | None = None
_ATEXIT_REGISTERED = False


class _NullSpan:
    """Shared no-op stand-in for spans and profile stages (reentrant)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **args: Any) -> None:
        """Discard annotations (the live span merges them into ``args``)."""


class _NullMetric:
    """Shared no-op stand-in for every metric type."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


# ----------------------------------------------------------------------
# Instrumentation entry points (hot: called from instrumented modules)
# ----------------------------------------------------------------------
def span(name: str, **args: Any) -> Any:
    """A wall-clock span context manager; a shared no-op when tracing is off.

    ``args`` become the Chrome trace event's ``args`` mapping; more can be
    attached mid-span with ``.annotate(key=value)`` (e.g. a solve status
    known only at the end).
    """
    if not _TRACING:
        return _NULL_SPAN
    from repro.obs.trace import start_span

    return start_span(name, args)


def counter(name: str) -> Any:
    """A monotonically increasing counter (``.inc(n)``)."""
    if not _METRICS:
        return _NULL_METRIC
    from repro.obs.metrics import registry

    return registry().counter(name)


def gauge(name: str) -> Any:
    """A last-value-wins gauge (``.set(v)``)."""
    if not _METRICS:
        return _NULL_METRIC
    from repro.obs.metrics import registry

    return registry().gauge(name)


def histogram(name: str) -> Any:
    """A value distribution (``.observe(v)``): count/sum/min/max/quantiles."""
    if not _METRICS:
        return _NULL_METRIC
    from repro.obs.metrics import registry

    return registry().histogram(name)


def series(name: str) -> Any:
    """An append-only ordered series (``.append(v)``), e.g. per-epoch loss."""
    if not _METRICS:
        return _NULL_METRIC
    from repro.obs.metrics import registry

    return registry().series(name)


def profile_stage(name: str) -> Any:
    """A cProfile capture around a pipeline stage; no-op when profiling is
    off or another stage is already being profiled in this process."""
    if not _PROFILING:
        return _NULL_SPAN
    from repro.obs.profile import stage

    return stage(name)


def event(kind: str, **args: Any) -> None:
    """Record one operational event (``kind`` from ``events.EVENT_KINDS``).

    A single boolean check when the event log is off — callers pay no
    allocation for the kwargs dict until the layer is enabled... which is
    why hot paths should still guard payload *construction* with
    :func:`events_enabled` when the args are expensive to build.
    """
    if not _EVENTS:
        return
    from repro.obs.events import emit

    emit(kind, args)


def live_tick() -> None:
    """Give the live exporter a chance to flush (time-gated, parent-only)."""
    if not _LIVE:
        return
    from repro.obs.live import tick

    tick()


def live_section(name: str, payload: Any) -> None:
    """Publish a structured section into the live status snapshot.

    Guard payload construction with :func:`live_enabled` on hot paths —
    the disabled path must allocate nothing.
    """
    if not _LIVE:
        return
    from repro.obs.live import set_section

    set_section(name, payload)


# ----------------------------------------------------------------------
# State queries
# ----------------------------------------------------------------------
def tracing_enabled() -> bool:
    return _TRACING


def metrics_enabled() -> bool:
    return _METRICS


def profiling_enabled() -> bool:
    return _PROFILING


def live_enabled() -> bool:
    return _LIVE


def events_enabled() -> bool:
    return _EVENTS


def enabled() -> bool:
    """Is any observability layer on?"""
    return _TRACING or _METRICS or _PROFILING or _LIVE or _EVENTS


# ----------------------------------------------------------------------
# Run control
# ----------------------------------------------------------------------
def configure(
    trace: PathLike | None = None,
    metrics: PathLike | None = None,
    profile: PathLike | None = None,
    header: "dict[str, Any] | None" = None,
    status: PathLike | None = None,
    status_interval: float = 1.0,
    events: PathLike | None = None,
) -> None:
    """Enable the requested layers for this process (and forked children).

    ``trace`` — path of the JSONL span file (appended to, never
    truncated, so several runs can share one flame chart);
    ``metrics`` — path of the JSON metrics snapshot (snapshots at the
    same path accumulate: an existing document is merged, not replaced);
    ``profile`` — directory for per-stage ``.pstats`` + report files;
    ``status`` — path of the live-status JSONL file; every
    ``status_interval`` seconds a snapshot is appended there and
    ``<status>.latest.json`` is atomically replaced (``repro obs top``
    tails it).  Live status implies a metrics registry: when ``metrics``
    is not also requested an *ephemeral* registry feeds the exporter and
    no ``metrics.json`` is written at the end;
    ``events`` — path of the structured operational event log (JSONL,
    schema-validated, appended to by forked children directly);
    ``header`` — fields stamped into the trace header and metrics run
    record (the CLI adds ``argv``; :func:`annotate` adds
    ``config_digest`` once the run's config exists).

    Calling with every path ``None`` resets to the disabled state.
    """
    global _TRACING, _METRICS, _PROFILING, _LIVE, _EVENTS
    global _ROOT_PID, _ATEXIT_REGISTERED
    finish()  # flush any previous configuration first
    if (
        trace is None
        and metrics is None
        and profile is None
        and status is None
        and events is None
    ):
        return
    _ROOT_PID = os.getpid()
    if trace is not None:
        from repro.obs.trace import open_writer

        open_writer(trace, dict(header or {}))
        _TRACING = True
    if metrics is not None or status is not None:
        from repro.obs.metrics import open_registry

        if metrics is not None:
            open_registry(metrics, dict(header or {}))
        else:
            # Status-only run: counters must exist for the exporter to
            # publish, but nothing should persist past finish().
            shadow = str(status) + ".live-metrics"
            open_registry(shadow, dict(header or {}), persist=False)
        _METRICS = True
    if events is not None:
        from repro.obs.events import open_log

        open_log(events)
        _EVENTS = True
    if status is not None:
        # Opened after the metrics registry: the exporter's first flush
        # already publishes a (possibly empty) merged metric view.
        from repro.obs.live import open_exporter

        open_exporter(status, status_interval, dict(header or {}))
        _LIVE = True
    if profile is not None:
        from repro.obs.profile import open_profiler

        open_profiler(profile)
        _PROFILING = True
    if not _ATEXIT_REGISTERED:
        # Backstop for library users who never call finish(); the CLI
        # calls it explicitly.  Harmless double-flush: finish() is
        # idempotent.  (multiprocessing children exit via os._exit and
        # skip atexit — they flush through child_flush() instead.)
        atexit.register(finish)
        _ATEXIT_REGISTERED = True


def annotate(**fields: Any) -> None:
    """Attach run-level fields (``config_digest``, experiment name, ...)
    to the trace header and the metrics run record."""
    if _TRACING:
        from repro.obs.trace import annotate_header

        annotate_header(fields)
    if _METRICS:
        from repro.obs.metrics import annotate_run

        annotate_run(fields)
    if _LIVE:
        from repro.obs.live import annotate_header as live_annotate

        live_annotate(fields)


def finish() -> None:
    """Flush and disable every layer (idempotent).

    In the configuring (root) process this writes the final metrics
    snapshot — merging any ``.parts`` staged by forked children — and
    flushes the trace file.  In a forked child it stages the child's
    contribution instead (same effect as :func:`child_flush`).
    """
    global _TRACING, _METRICS, _PROFILING, _LIVE, _EVENTS, _ROOT_PID
    in_child = _ROOT_PID is not None and os.getpid() != _ROOT_PID
    if _TRACING:
        from repro.obs.trace import close_writer

        close_writer()
        _TRACING = False
    if _LIVE:
        # Closed before the registry so the final status snapshot still
        # sees the live metric values (children's parts included).
        from repro.obs.live import close_exporter

        close_exporter()
        _LIVE = False
    if _EVENTS:
        from repro.obs.events import close_log

        close_log()
        _EVENTS = False
    if _METRICS:
        from repro.obs.metrics import close_registry

        close_registry(final=not in_child)
        _METRICS = False
    if _PROFILING:
        from repro.obs.profile import close_profiler

        close_profiler()
        _PROFILING = False
    _ROOT_PID = None


def child_flush() -> None:
    """Make a forked worker's observations durable without disabling.

    Called at process-boundary points (supervisor attempts, pool jobs):
    flushes buffered trace events and stages the child's metrics to the
    ``.parts`` sidecar the parent merges at :func:`finish`.  Cheap and
    safe to call repeatedly — parts are deduplicated per pid — and a
    no-op in the root process for metrics (the root writes the final
    snapshot itself) and entirely when observability is off.
    """
    if _TRACING:
        from repro.obs.trace import flush

        flush()
    if _METRICS:
        from repro.obs.metrics import stage_child_parts

        stage_child_parts()
