"""Structured operational event log: one JSON object per line.

Where metrics answer "how much" and traces answer "how long", the event
log answers "what happened": shard respawns, backpressure stalls, gap
repairs, OOD quarantines, SLO breaches, checkpoint saves — the discrete
occurrences an operator greps for after (or during) an incident.

Every line is a self-describing record::

    {"schema_version": 1, "ts_unix": ..., "pid": ..., "kind": "respawn",
     "args": {"shard": 1, "outcome": "crash", "attempt": 1}}

``kind`` is drawn from the closed :data:`EVENT_KINDS` vocabulary — an
unknown kind raises at emit time, so instrumentation typos fail tests
instead of producing unvalidatable logs.  The checked-in schema
(``tests/corpus/obs_events.schema.json``) pins the wire format and is
enforced by ``repro obs validate --schema`` (same dependency-free
validator dialect as the trace schema).

Process model: each record is written as **one unbuffered O_APPEND
write**, so forked children (supervisor attempts, serve shards) append
to the same file without coordination — POSIX keeps sub-``PIPE_BUF``
appends atomic, and every event line here is far below that.  There is
nothing to merge and nothing to flush.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

EVENTS_SCHEMA_VERSION = 1

#: The closed vocabulary of operational events.  Extending it means
#: extending ``tests/corpus/obs_events.schema.json`` too — the schema's
#: ``enum`` mirrors this tuple and the corpus test pins the mirror.
EVENT_KINDS = (
    "service_started",
    "service_drained",
    "respawn",
    "shard_dead",
    "backpressure",
    "record_rejected",
    "gap_repaired",
    "gap_skipped",
    "stream_resync",
    "duplicate_dropped",
    "ood_flagged",
    "ood_quarantined",
    "slo_breach",
    "slo_recovered",
    "checkpoint_saved",
)

_LOG: "_EventLog | None" = None


class _EventLog:
    """Append-only event sink; safe to share across forked processes."""

    def __init__(self, path: Path):
        self.path = path

    def emit(self, kind: str, args: dict[str, Any]) -> None:
        record = {
            "schema_version": EVENTS_SCHEMA_VERSION,
            "ts_unix": time.time(),
            "pid": os.getpid(),
            "kind": kind,
            "args": args,
        }
        data = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
        fd = os.open(str(self.path), os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)


def open_log(path: "str | os.PathLike[str]") -> None:
    global _LOG
    resolved = Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    _LOG = _EventLog(resolved)


def close_log() -> None:
    global _LOG
    _LOG = None


def emit(kind: str, args: dict[str, Any]) -> None:
    if kind not in EVENT_KINDS:
        raise ValueError(
            f"unknown event kind {kind!r}; known kinds: {', '.join(EVENT_KINDS)}"
        )
    log = _LOG
    if log is not None:
        log.emit(kind, args)


def read_events(path: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    """Parse an event log; torn trailing lines (killed writer) are dropped."""
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
    return events
