"""Bench-trajectory tracking: a ledger of ``BENCH_*.json`` over time.

Every benchmark in this repo writes a standardized artifact
(:mod:`benchmarks.bench_schema`), but until now each write *replaced*
history — a 30% throughput regression looked identical to a 30% gain.
This module folds the artifacts into an append-only JSONL **ledger**
(``benchmarks/bench_history.jsonl``) and turns it into a regression
gate:

* ``repro obs bench ingest [--baseline]`` appends one entry per artifact
  (bench name, config digest, the tracked metric values, a timestamp);
  ``--baseline`` marks the entries as the reference bar;
* ``repro obs bench check`` compares each artifact against the **latest
  baseline with the same (bench, config_digest)** and exits 1 when a
  tracked metric regresses beyond ``tolerance`` — higher-is-better
  metrics may not fall below ``baseline * (1 - tolerance)``,
  lower-is-better may not rise above ``baseline * (1 + tolerance)``,
  and exact metrics (the robustness claim verdict) must match.

Matching on the config digest is what keeps the gate honest across
profiles: a quick-profile CI artifact never gets compared against the
checked-in paper-profile baseline — it is reported as unmatched (a note,
not a failure, unless ``strict``).

Tracked metrics are a deliberate curation, not everything in the
artifact: throughput/speedup headlines and latency bounds, the numbers
whose silent decay a maintainer actually wants to be paged about.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

HISTORY_SCHEMA_VERSION = 1

#: Ledger location relative to the repo / artifact root.
DEFAULT_LEDGER = Path("benchmarks") / "bench_history.jsonl"

#: Default fractional tolerance before a drift counts as a regression.
#: Wide on purpose: single-core CI runners are noisy, and the gate's job
#: is catching step-function decay, not 3% jitter.
DEFAULT_TOLERANCE = 0.5


@dataclass(frozen=True)
class TrackedMetric:
    """One metric the gate watches, and which direction is "worse"."""

    key: str  # dotted path into the artifact's "metrics" mapping
    direction: str  # "higher" | "lower" | "equal"

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower", "equal"):
            raise ValueError(f"unknown direction {self.direction!r} for {self.key}")


#: What ``check`` compares, per bench name.
TRACKED: dict[str, tuple[TrackedMetric, ...]] = {
    "simspeed": (
        TrackedMetric("speedup", "higher"),
        TrackedMetric("cache_hit_speedup", "higher"),
        TrackedMetric("array_steps_per_sec", "higher"),
    ),
    "train": (
        TrackedMetric("train_speedup", "higher"),
        TrackedMetric("cem_speedup", "higher"),
        TrackedMetric("table1_speedup", "higher"),
    ),
    "serve": (
        TrackedMetric("switch_intervals_per_sec", "higher"),
        TrackedMetric("windows_per_sec", "higher"),
        TrackedMetric("p99_latency_seconds", "lower"),
    ),
    "topology": (
        TrackedMetric("fabric_switch_steps_per_sec", "higher"),
        TrackedMetric("flow_array_steps_per_sec", "higher"),
        TrackedMetric("fabric_overhead_vs_reference", "lower"),
    ),
    "robustness": (
        TrackedMetric("claim.holds", "equal"),
    ),
}


def _lookup(metrics: dict[str, Any], dotted: str) -> Any:
    """Resolve ``a.b.c`` inside a nested metrics mapping (None if absent)."""
    node: Any = metrics
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


# ----------------------------------------------------------------------
# Artifacts and the ledger
# ----------------------------------------------------------------------
def discover_artifacts(root: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    """Parse every ``BENCH_*.json`` under ``root`` (sorted by bench name)."""
    artifacts = []
    for path in sorted(Path(root).glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(document, dict) or "bench" not in document:
            raise ValueError(f"{path}: not a bench_schema artifact")
        document["_path"] = str(path)
        artifacts.append(document)
    return artifacts


def load_ledger(path: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    ledger_path = Path(path)
    if not ledger_path.exists():
        return []
    entries = []
    with open(ledger_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue  # torn trailing line
    return entries


def ledger_entry(
    artifact: dict[str, Any], baseline: bool, recorded_unix: float | None = None
) -> dict[str, Any]:
    """The ledger line for one artifact: tracked metric values only."""
    bench = artifact["bench"]
    metrics = artifact.get("metrics", {})
    tracked = {
        metric.key: _lookup(metrics, metric.key)
        for metric in TRACKED.get(bench, ())
    }
    profile = metrics.get("profile") if isinstance(metrics, dict) else None
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "config_digest": artifact.get("config_digest"),
        "recorded_unix": time.time() if recorded_unix is None else recorded_unix,
        "baseline": bool(baseline),
        "profile": profile,
        "metrics": tracked,
    }


def ingest(
    root: "str | os.PathLike[str]",
    ledger: "str | os.PathLike[str] | None" = None,
    baseline: bool = False,
    benches: "list[str] | None" = None,
) -> list[dict[str, Any]]:
    """Append one ledger entry per artifact; returns what was appended."""
    root = Path(root)
    ledger_path = Path(ledger) if ledger is not None else root / DEFAULT_LEDGER
    entries = []
    for artifact in discover_artifacts(root):
        if benches and artifact["bench"] not in benches:
            continue
        entries.append(ledger_entry(artifact, baseline))
    if entries:
        ledger_path.parent.mkdir(parents=True, exist_ok=True)
        with open(ledger_path, "a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return entries


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One tracked metric outside tolerance vs its baseline."""

    bench: str
    key: str
    direction: str
    current: Any
    baseline: Any
    tolerance: float

    def __str__(self) -> str:
        if self.direction == "equal":
            return (
                f"{self.bench}.{self.key}: {self.current!r} != "
                f"baseline {self.baseline!r}"
            )
        verb = "fell below" if self.direction == "higher" else "rose above"
        return (
            f"{self.bench}.{self.key}: {self.current:.6g} {verb} the "
            f"±{self.tolerance:.0%} envelope of baseline {self.baseline:.6g}"
        )


def _baseline_for(
    entries: list[dict[str, Any]], bench: str, digest: "str | None"
) -> "dict[str, Any] | None":
    """The latest baseline entry matching (bench, config_digest)."""
    match = None
    for entry in entries:
        if (
            entry.get("baseline")
            and entry.get("bench") == bench
            and entry.get("config_digest") == digest
        ):
            match = entry  # entries are in append order; keep the last
    return match


def check(
    root: "str | os.PathLike[str]",
    ledger: "str | os.PathLike[str] | None" = None,
    tolerance: float = DEFAULT_TOLERANCE,
    benches: "list[str] | None" = None,
    strict: bool = False,
) -> "tuple[list[str], list[Regression]]":
    """Compare artifacts under ``root`` against their recorded baselines.

    Returns ``(report_lines, regressions)``; the CLI exits 1 when
    ``regressions`` is non-empty (or, under ``strict``, when an artifact
    has no matching baseline).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    root = Path(root)
    ledger_path = Path(ledger) if ledger is not None else root / DEFAULT_LEDGER
    entries = load_ledger(ledger_path)
    lines: list[str] = []
    regressions: list[Regression] = []
    checked = 0

    for artifact in discover_artifacts(root):
        bench = artifact["bench"]
        if benches and bench not in benches:
            continue
        tracked = TRACKED.get(bench)
        if not tracked:
            lines.append(f"{bench}: no tracked metrics registered — skipped")
            continue
        digest = artifact.get("config_digest")
        baseline = _baseline_for(entries, bench, digest)
        if baseline is None:
            note = (
                f"{bench}: no baseline for config {str(digest)[:12]} — "
                + ("FAIL (strict)" if strict else "skipped")
            )
            lines.append(note)
            if strict:
                regressions.append(
                    Regression(bench, "<baseline>", "equal", digest, None, tolerance)
                )
            continue
        checked += 1
        metrics = artifact.get("metrics", {})
        base_metrics = baseline.get("metrics", {})
        for metric in tracked:
            current = _lookup(metrics, metric.key)
            reference = base_metrics.get(metric.key)
            if reference is None:
                lines.append(
                    f"{bench}.{metric.key}: baseline has no value — skipped"
                )
                continue
            if current is None:
                regressions.append(
                    Regression(
                        bench, metric.key, metric.direction, None, reference, tolerance
                    )
                )
                lines.append(f"{bench}.{metric.key}: MISSING from artifact — FAIL")
                continue
            ok, summary = _compare(metric, current, reference, tolerance)
            lines.append(f"{bench}.{metric.key}: {summary}")
            if not ok:
                regressions.append(
                    Regression(
                        bench,
                        metric.key,
                        metric.direction,
                        current,
                        reference,
                        tolerance,
                    )
                )
    if checked == 0 and not regressions:
        lines.append("no artifacts matched a recorded baseline — nothing gated")
    return lines, regressions


def _compare(
    metric: TrackedMetric, current: Any, reference: Any, tolerance: float
) -> "tuple[bool, str]":
    if metric.direction == "equal":
        ok = current == reference
        return ok, (
            f"{current!r} == baseline {reference!r}"
            if ok
            else f"{current!r} != baseline {reference!r} — FAIL"
        )
    current_f = float(current)
    reference_f = float(reference)
    if metric.direction == "higher":
        bound = reference_f * (1.0 - tolerance)
        ok = current_f >= bound
        relation = f">= {bound:.6g}"
    else:
        bound = reference_f * (1.0 + tolerance)
        ok = current_f <= bound
        relation = f"<= {bound:.6g}"
    summary = (
        f"{current_f:.6g} vs baseline {reference_f:.6g} "
        f"({'ok' if ok else 'FAIL'}: {relation})"
    )
    return ok, summary
