"""Lightweight in-process metrics registry with a JSON snapshot.

Four metric types, all process-local and thread-safe:

* **counter** — monotonically increasing integer (``.inc(n)``); merged
  across processes and runs by summation.
* **gauge** — last value wins (``.set(v)``).
* **histogram** — a value distribution (``.observe(v)``) summarised as
  count/sum/min/max plus quantiles; raw values are kept up to a cap so
  cross-process merges and re-quantiling stay exact for the sample sizes
  this repo produces (residuals per Table-1 run, solver nodes, ...).
* **series** — an append-only ordered list (``.append(v)``), e.g. the
  per-epoch EMD loss trajectory; merged by extension.

Snapshot document (``metrics.json``)::

    {
      "schema_version": 1,
      "updated_unix": ...,
      "runs": [{"argv": [...], "config_digest": "...", ...}, ...],
      "metrics": {
        "cache.hits": {"type": "counter", "value": 3},
        "table1.kal.residual.c1": {"type": "histogram", "count": ..,
                                    "sum": .., "min": .., "max": ..,
                                    "quantiles": {"p50": .., ...},
                                    "values": [...]},
        ...
      }
    }

Snapshots at one path **accumulate**: :func:`close_registry` merges the
live registry into any existing document at the same path (mirroring the
append-only trace file), so a chain of CLI runs sharing ``--metrics``
builds one combined snapshot.

Process model: a forked child's registry detects the pid change and
resets (its inherited values are the parent's, which the parent still
holds); the child then stages its own observations as one JSON line in a
``<metrics>.parts`` sidecar via :func:`stage_child_parts`.  The parent's
final :func:`close_registry` folds the parts in — keeping only the last
line per child pid, so repeated staging never double-counts — and
deletes the sidecar.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path
from typing import Any

METRICS_SCHEMA_VERSION = 1

#: Histograms keep raw values up to this cap; beyond it only the running
#: count/sum/min/max stay exact and quantiles become approximate (over
#: the retained sample).
HISTOGRAM_VALUE_CAP = 4096

_QUANTILES = (0.5, 0.9, 0.99)

_REGISTRY: "MetricsRegistry | None" = None
_ORIGIN_PID: int | None = None  # pid that called open_registry
#: False when the registry exists only to feed the live status exporter:
#: children still stage .parts and the live plane still merges them, but
#: no metrics.json document is written at close (the sidecar is cleaned).
_PERSIST = True


class Counter:
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    __slots__ = ("count", "sum", "min", "max", "values", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self.values) < HISTOGRAM_VALUE_CAP:
                self.values.append(value)

    def snapshot(self) -> dict[str, Any]:
        return _histogram_snapshot(
            count=self.count,
            total=self.sum,
            minimum=self.min,
            maximum=self.max,
            values=list(self.values),
        )


class Series:
    __slots__ = ("values", "_lock")

    def __init__(self) -> None:
        self.values: list[float] = []
        self._lock = threading.Lock()

    def append(self, value: float) -> None:
        with self._lock:
            self.values.append(float(value))

    def snapshot(self) -> dict[str, Any]:
        return {"type": "series", "values": list(self.values)}


def _quantile(sorted_values: list[float], q: float) -> float:
    # Linear interpolation between closest ranks (numpy's default), kept
    # dependency-free so summaries work on a bare metrics.json.
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def _histogram_snapshot(
    count: int, total: float, minimum: float, maximum: float, values: list[float]
) -> dict[str, Any]:
    snapshot: dict[str, Any] = {
        "type": "histogram",
        "count": count,
        "sum": total,
        "min": None if count == 0 else minimum,
        "max": None if count == 0 else maximum,
        "values": values,
    }
    if values:
        ordered = sorted(values)
        snapshot["quantiles"] = {
            f"p{int(q * 100)}": _quantile(ordered, q) for q in _QUANTILES
        }
    else:
        snapshot["quantiles"] = {}
    return snapshot


class MetricsRegistry:
    """Per-process registry; forked children reset to empty on first use."""

    def __init__(self, path: Path, header: dict[str, Any]):
        self.path = path
        self.pid = os.getpid()
        self.run: dict[str, Any] = dict(header)
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _check_fork(self) -> None:
        if os.getpid() != self.pid:
            # Inherited values belong to the parent (which still holds
            # them); starting empty prevents double counting at merge.
            self.pid = os.getpid()
            self._metrics = {}

    def _get(self, name: str, factory: type) -> Any:
        with self._lock:
            self._check_fork()
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, factory):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {factory.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        return self._get(name, Series)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._check_fork()
            return {name: metric.snapshot() for name, metric in self._metrics.items()}

    @property
    def parts_path(self) -> Path:
        return self.path.with_name(self.path.name + ".parts")


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def merge_metric(base: "dict[str, Any] | None", update: dict[str, Any]) -> dict[str, Any]:
    """Fold one metric snapshot into another of the same name."""
    if base is None or base.get("type") != update.get("type"):
        return update
    kind = update["type"]
    if kind == "counter":
        return {"type": "counter", "value": base["value"] + update["value"]}
    if kind == "gauge":
        return update if update["value"] is not None else base
    if kind == "series":
        return {"type": "series", "values": list(base["values"]) + list(update["values"])}
    if kind == "histogram":
        count = base["count"] + update["count"]
        if count == 0:
            return update
        values = (list(base.get("values", [])) + list(update.get("values", [])))[
            :HISTOGRAM_VALUE_CAP
        ]
        minimums = [v["min"] for v in (base, update) if v["min"] is not None]
        maximums = [v["max"] for v in (base, update) if v["max"] is not None]
        return _histogram_snapshot(
            count=count,
            total=base["sum"] + update["sum"],
            minimum=min(minimums),
            maximum=max(maximums),
            values=values,
        )
    return update


def merge_snapshots(
    base: dict[str, Any], update: dict[str, Any]
) -> dict[str, Any]:
    merged = dict(base)
    for name, metric in update.items():
        merged[name] = merge_metric(merged.get(name), metric)
    return merged


def _load_parts(parts_path: Path) -> dict[str, Any]:
    """Merge staged child snapshots, keeping the last line per pid."""
    if not parts_path.exists():
        return {}
    last_per_pid: dict[int, dict[str, Any]] = {}
    with open(parts_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write from a killed child; drop it
            if isinstance(record, dict) and "pid" in record:
                last_per_pid[record["pid"]] = record.get("metrics", {})
    merged: dict[str, Any] = {}
    for snapshot in last_per_pid.values():
        merged = merge_snapshots(merged, snapshot)
    return merged


# ----------------------------------------------------------------------
# Module-level lifecycle (driven by repro.obs)
# ----------------------------------------------------------------------
def registry() -> MetricsRegistry:
    reg = _REGISTRY
    if reg is None:
        raise RuntimeError("metrics not configured (call repro.obs.configure)")
    return reg


def open_registry(
    path: "str | os.PathLike[str]", header: dict[str, Any], persist: bool = True
) -> None:
    global _REGISTRY, _ORIGIN_PID, _PERSIST
    resolved = Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    _REGISTRY = MetricsRegistry(resolved, header)
    _ORIGIN_PID = os.getpid()
    _PERSIST = bool(persist)


def live_merged_snapshot() -> dict[str, Any]:
    """The current cross-process view: live registry + staged ``.parts``.

    Read-only — the sidecar is folded in without being consumed, so the
    final :func:`close_registry` merge still sees every part.  This is
    what the live status exporter publishes mid-run.
    """
    reg = _REGISTRY
    if reg is None:
        return {}
    merged = _load_parts(reg.parts_path)
    return merge_snapshots(merged, reg.snapshot())


def annotate_run(fields: dict[str, Any]) -> None:
    reg = _REGISTRY
    if reg is not None:
        reg.run.update(fields)


def stage_child_parts() -> None:
    """Append this forked child's snapshot to the ``.parts`` sidecar.

    A no-op in the process that opened the registry — the root folds its
    own live registry into the final snapshot at :func:`close_registry`.
    """
    reg = _REGISTRY
    if reg is None or os.getpid() == _ORIGIN_PID:
        return
    snapshot = reg.snapshot()  # also triggers the fork reset if needed
    if not snapshot:
        return
    line = json.dumps(
        {"pid": os.getpid(), "metrics": snapshot}, separators=(",", ":")
    )
    data = (line + "\n").encode("utf-8")
    fd = os.open(
        str(reg.parts_path), os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
    )
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def close_registry(final: bool) -> None:
    """Flush and drop the registry.

    ``final=True`` (root process): write the merged ``metrics.json`` —
    existing document at the path + staged child parts + live registry —
    and delete the parts sidecar.  ``final=False`` (forked child):
    stage this process's contribution to the sidecar instead.
    """
    global _REGISTRY
    reg = _REGISTRY
    _REGISTRY = None
    if reg is None:
        return
    if not final:
        _REGISTRY = reg
        stage_child_parts()
        _REGISTRY = None
        return

    if not _PERSIST:
        # Live-status-only registry: the exporter already published the
        # merged view; leave no metrics.json behind, just the cleanup.
        if reg.parts_path.exists():
            try:
                reg.parts_path.unlink()
            except OSError:
                pass
        return

    metrics = _load_parts(reg.parts_path)
    metrics = merge_snapshots(metrics, reg.snapshot())

    runs: list[dict[str, Any]] = []
    if reg.path.exists():
        try:
            existing = json.loads(reg.path.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
        if isinstance(existing, dict):
            prior = existing.get("metrics", {})
            if isinstance(prior, dict):
                metrics = merge_snapshots(prior, metrics)
            prior_runs = existing.get("runs", [])
            if isinstance(prior_runs, list):
                runs = list(prior_runs)
    if reg.run:
        runs.append(dict(reg.run))

    document = {
        "schema_version": METRICS_SCHEMA_VERSION,
        "updated_unix": time.time(),
        "runs": runs,
        "metrics": metrics,
    }
    tmp = reg.path.with_name(reg.path.name + ".tmp")
    tmp.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(tmp, reg.path)
    if reg.parts_path.exists():
        try:
            reg.parts_path.unlink()
        except OSError:
            pass


def load_snapshot(path: "str | os.PathLike[str]") -> dict[str, Any]:
    """Read a ``metrics.json`` document (for summaries and tests)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "metrics" not in document:
        raise ValueError(f"{path}: not a repro metrics snapshot")
    return document
