"""Command-line interface: simulate, train, impute, and run experiments.

Usage (installed as the console script ``repro`` or via
``python -m repro.cli``)::

    repro simulate --duration 2000 --out trace.npz
    repro train --profile quick --epochs 10 --out model.npz
    repro impute --model model.npz --profile quick
    repro table1 --profile quick
    repro scalability --horizons 8 16 32

All subcommands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

#: Where ``table1 --resume`` keeps its journal when ``--journal`` is absent.
_DEFAULT_TABLE1_JOURNAL = Path("repro-table1.journal.jsonl")


def _scenario(args) -> "ScenarioConfig":
    from repro.eval.scenarios import paper_scenario, quick_scenario

    scenario = paper_scenario() if args.profile == "paper" else quick_scenario()
    if getattr(args, "duration", None):
        scenario = type(scenario)(**{**scenario.__dict__, "duration_bins": args.duration})
    return scenario


def cmd_simulate(args) -> int:
    """Simulate the scenario and save the fine-grained trace as .npz."""
    from repro.eval.scenarios import generate_trace
    from repro.switchsim.io import save_trace

    scenario = _scenario(args)
    trace = generate_trace(
        scenario,
        seed=args.seed,
        cache=args.cache,
        engine=args.engine,
        selfcheck=args.selfcheck,
    )
    save_trace(trace, args.out)
    print(
        f"simulated {trace.num_bins} bins x {trace.num_queues} queues "
        f"(max qlen {trace.qlen.max()}, drops {trace.dropped.sum()}) -> {args.out}"
    )
    return 0


def cmd_train(args) -> int:
    """Train the transformer (+KAL) and save its parameters."""
    from repro.eval.scenarios import generate_dataset
    from repro.eval.table1 import Table1Config, train_transformer
    from repro.nn.serialization import save_module

    scenario = _scenario(args)
    train, val, test = generate_dataset(scenario, seed=args.seed)
    config = Table1Config(scenario=scenario, epochs=args.epochs, seed=args.seed)
    model, seconds = train_transformer(
        train,
        val,
        config,
        use_kal=not args.no_kal,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    save_module(model, args.out)
    print(
        f"trained on {len(train)} windows in {seconds:.0f}s "
        f"(KAL={'off' if args.no_kal else 'on'}) -> {args.out}"
    )
    print(f"val/test windows available: {len(val)}/{len(test)}")
    return 0


def cmd_impute(args) -> int:
    """Load a trained model, impute the test split, report consistency."""
    from repro.constraints import check_constraints
    from repro.eval.scenarios import generate_dataset
    from repro.eval.table1 import Table1Config
    from repro.imputation import ConstraintEnforcer
    from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer
    from repro.nn.serialization import load_module

    scenario = _scenario(args)
    train, _, test = generate_dataset(scenario, seed=args.seed, selfcheck=args.selfcheck)
    table_config = Table1Config(scenario=scenario, seed=args.seed)
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=table_config.d_model,
            num_heads=table_config.num_heads,
            num_layers=table_config.num_layers,
            d_ff=table_config.d_ff,
        ),
        train.scaler,
        seed=args.seed,
    )
    load_module(model, args.model)
    enforcer = ConstraintEnforcer(test.switch_config)

    satisfied = 0
    mae_total = 0.0
    for sample in test.samples:
        imputed = enforcer.enforce(model.impute(sample), sample)
        if args.selfcheck:
            from repro.testing.selfcheck import selfcheck_enforced

            selfcheck_enforced(imputed, sample, test.switch_config)
        report = check_constraints(imputed, sample, test.switch_config)
        satisfied += report.satisfied
        mae_total += float(np.abs(imputed - sample.target_raw).mean())
    print(
        f"imputed {len(test)} windows: {satisfied}/{len(test)} constraint-"
        f"satisfied, MAE {mae_total / max(len(test), 1):.3f} packets"
    )
    return 0 if satisfied == len(test) else 1


def cmd_table1(args) -> int:
    """Run the full Table-1 experiment and print the table."""
    from repro.eval.table1 import Table1Config, run_table1

    scenario = _scenario(args)
    config = Table1Config(scenario=scenario, epochs=args.epochs, seed=args.seed)
    datasets = None
    if args.selfcheck:
        from repro.eval.scenarios import generate_dataset

        datasets = generate_dataset(scenario, seed=args.seed, selfcheck=True)
    journal = args.journal
    if journal is None and args.resume:
        journal = _DEFAULT_TABLE1_JOURNAL
    result = run_table1(config, datasets=datasets, journal=journal)
    print(result.render())
    print()
    for key, value in result.improvement_over_transformer().items():
        print(f"  {key}: {value:+.1f}% vs plain transformer")
    return 0


def cmd_verify(args) -> int:
    """Audit a trained model against the switch constraints (C1-C3)."""
    from repro.eval.scenarios import generate_dataset
    from repro.eval.table1 import Table1Config
    from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer
    from repro.nn.serialization import load_module
    from repro.verify import ConstraintVerifier

    scenario = _scenario(args)
    train, _, test = generate_dataset(scenario, seed=args.seed)
    table_config = Table1Config(scenario=scenario, seed=args.seed)
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=table_config.d_model,
            num_heads=table_config.num_heads,
            num_layers=table_config.num_layers,
            d_ff=table_config.d_ff,
        ),
        train.scaler,
        seed=args.seed,
    )
    load_module(model, args.model)
    verifier = ConstraintVerifier(test, tolerance=args.tolerance)
    report = verifier.verify(model, perturbations=args.perturbations, seed=args.seed)
    print(report.summary())
    return 0 if report.tolerant_rate >= args.required_rate else 1


def cmd_scalability(args) -> int:
    """FM-alone solve effort vs horizon."""
    from repro.eval.report import format_table
    from repro.eval.scalability import fm_scaling

    points = fm_scaling(
        args.horizons,
        steps_per_interval=4,
        node_limit=args.node_limit,
        deadline=args.deadline,
    )
    rows = [
        [
            str(p.horizon),
            p.status + (" (timed out)" if p.timed_out else ""),
            f"{p.solve_seconds:.2f}",
            str(p.nodes_explored),
        ]
        for p in points
    ]
    print(format_table(["horizon", "status", "seconds", "nodes"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FM+ML telemetry imputation (HotNets '23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--profile", choices=("paper", "quick"), default="quick")
        p.add_argument("--seed", type=int, default=0)

    def selfcheckable(p):
        p.add_argument(
            "--selfcheck",
            action="store_true",
            help="run the invariant oracles inline; violations abort with a "
            "serialized repro (off by default)",
        )

    p = sub.add_parser("simulate", help="simulate a switch trace")
    common(p)
    p.add_argument("--duration", type=int, help="fine bins to simulate")
    p.add_argument("--out", type=Path, default=Path("trace.npz"))
    p.add_argument(
        "--engine",
        choices=("auto", "array", "reference"),
        default="auto",
        help="simulation core (both produce bit-identical traces)",
    )
    p.add_argument(
        "--cache",
        type=Path,
        help="trace cache directory; re-runs skip simulation entirely",
    )
    selfcheckable(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("train", help="train the transformer imputer")
    common(p)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--no-kal", action="store_true", help="disable the knowledge-augmented loss")
    p.add_argument("--out", type=Path, default=Path("model.npz"))
    p.add_argument(
        "--checkpoint",
        type=Path,
        help="write an atomic, checksummed training checkpoint here every epoch",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from an existing --checkpoint instead of epoch 0",
    )
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("impute", help="impute the test split with a trained model")
    common(p)
    p.add_argument("--model", type=Path, required=True)
    selfcheckable(p)
    p.set_defaults(func=cmd_impute)

    p = sub.add_parser("table1", help="regenerate Table 1")
    common(p)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument(
        "--journal",
        type=Path,
        help="result journal (JSONL); completed method columns are "
        "committed durably and skipped on re-run",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help=f"journal to {_DEFAULT_TABLE1_JOURNAL} when --journal is absent",
    )
    selfcheckable(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("verify", help="audit a trained model against C1-C3")
    common(p)
    p.add_argument("--model", type=Path, required=True)
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument("--perturbations", type=int, default=0)
    p.add_argument(
        "--required-rate",
        type=float,
        default=0.0,
        help="exit non-zero if the within-tolerance rate falls below this",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("scalability", help="FM-alone scaling study")
    p.add_argument("--horizons", type=int, nargs="+", default=[8, 16, 32])
    p.add_argument("--node-limit", type=int, default=2_000)
    p.add_argument(
        "--deadline",
        type=float,
        help="wall-clock seconds per solve; expired solves return their "
        "best incumbent flagged as timed out instead of hanging",
    )
    p.set_defaults(func=cmd_scalability)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Domain errors (infeasible CEM input, unsupported engine, a bad
    ``--cache`` path, self-check violations) are reported on stderr with a
    non-zero exit code instead of a traceback.
    """
    from repro.imputation.cem import CEMInfeasibleError
    from repro.switchsim.engine import EngineUnsupported
    from repro.testing.selfcheck import SelfCheckError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Pool workers are daemonic (terminated with us) and the journal /
        # checkpoint flush on every write, so there is nothing left to save.
        hint = ""
        if args.command in ("train", "table1"):
            hint = " (progress saved; resumable with --resume)"
        print(f"\ninterrupted{hint}", file=sys.stderr)
        return 130
    except CEMInfeasibleError as exc:
        print(f"error: constraint enforcement infeasible: {exc}", file=sys.stderr)
        return 2
    except SelfCheckError as exc:
        print(f"error: self-check violation: {exc}", file=sys.stderr)
        return 3
    except EngineUnsupported as exc:
        print(
            f"error: --engine array cannot reproduce this configuration: {exc}\n"
            "hint: use --engine auto (falls back) or --engine reference",
            file=sys.stderr,
        )
        return 2
    except NotADirectoryError as exc:
        print(
            f"error: --cache must point to a directory: {exc}",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":
    sys.exit(main())
