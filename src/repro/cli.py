"""Command-line interface: simulate, train, impute, and run experiments.

Usage (installed as the console script ``repro`` or via
``python -m repro.cli``)::

    repro run table1 --config examples/table1.toml --set epochs=5
    repro run simulate --set scenario.duration_bins=4000
    repro experiments
    repro train --profile quick --epochs 10 --out model.npz
    repro impute --model model.npz --profile quick

``repro run <experiment>`` is the canonical entry point: the experiment
is resolved in the :mod:`repro.experiments` registry, its typed config
is loaded from ``--config`` (TOML or JSON; defaults otherwise) and then
modified by dotted-path ``--set`` overrides.  The pre-registry
subcommands (``repro simulate``, ``repro table1``,
``repro scalability``) remain as aliases that call the exact same run
functions — behaviour-identical down to the journal bytes.

All subcommands are deterministic given their config/seed.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed (e.g. PYTHONPATH=src)
        from repro import __version__

        return __version__


def _scenario(args) -> "ScenarioConfig":
    from repro.eval.scenarios import paper_scenario, quick_scenario

    scenario = paper_scenario() if args.profile == "paper" else quick_scenario()
    if getattr(args, "duration", None):
        scenario = type(scenario)(**{**scenario.__dict__, "duration_bins": args.duration})
    return scenario


def _apply_overrides(config, args):
    """Apply ``--set key=value`` assignments (if any) to a config."""
    assignments = getattr(args, "overrides", None)
    if not assignments:
        return config
    from repro.config import apply_overrides

    return apply_overrides(config, assignments)


def _annotate_obs(config, experiment: str | None = None) -> None:
    """Stamp the resolved config's digest into the observability run.

    A trace/metrics file then carries the same ``config_digest`` that
    scopes this run's journal, cache entries, and checkpoints — making
    observability artifacts joinable with every other artifact of the
    run.  No-op when observability is off.
    """
    import repro.obs as obs

    if not obs.enabled():
        return
    from repro.config import config_digest

    fields = {"config_digest": config_digest(config)}
    if experiment is not None:
        fields["experiment"] = experiment
    obs.annotate(**fields)


# ----------------------------------------------------------------------
# Registry-backed subcommands
# ----------------------------------------------------------------------
def cmd_run(args) -> int:
    """Run a registered experiment from its typed config."""
    from repro.config import load_config
    from repro.experiments import get_experiment

    experiment = get_experiment(args.experiment)
    if args.config is not None:
        config = load_config(
            args.config, experiment.config_cls, expected_experiment=experiment.name
        )
    else:
        config = experiment.default_config()
    config = _apply_overrides(config, args)
    _annotate_obs(config, experiment=experiment.name)
    options = {
        option.dest: getattr(args, option.dest) for option in experiment.cli_options
    }
    return experiment.run(config, **options)


def cmd_experiments(args) -> int:
    """List the registered experiments."""
    from repro.eval.report import format_table
    from repro.experiments import iter_experiments

    rows = [
        [e.name, e.config_cls.__name__, e.artifact_dir, e.summary]
        for e in iter_experiments()
    ]
    print(format_table(["experiment", "config", "artifacts", "summary"], rows))
    return 0


def cmd_simulate(args) -> int:
    """Legacy alias: simulate the scenario and save the trace as .npz."""
    from repro.experiments import SimulateConfig, run_simulate_experiment

    config = SimulateConfig(
        scenario=_scenario(args), seed=args.seed, engine=args.engine
    )
    config = _apply_overrides(config, args)
    _annotate_obs(config, experiment="simulate")
    return run_simulate_experiment(
        config, out=args.out, cache=args.cache, selfcheck=args.selfcheck
    )


def cmd_table1(args) -> int:
    """Legacy alias: run the full Table-1 experiment and print the table."""
    from repro.eval.table1 import Table1Config
    from repro.experiments import run_table1_experiment

    config = Table1Config(
        scenario=_scenario(args), epochs=args.epochs, seed=args.seed
    )
    config = _apply_overrides(config, args)
    _annotate_obs(config, experiment="table1")
    return run_table1_experiment(
        config, journal=args.journal, resume=args.resume, selfcheck=args.selfcheck
    )


def cmd_serve(args) -> int:
    """Legacy alias: stream a replayed fleet through the imputation service."""
    from repro.experiments import run_serve_experiment
    from repro.serve.config import ServeConfig

    config = ServeConfig(
        scenario=_scenario(args),
        seed=args.seed,
        num_switches=args.switches,
        shards=args.shards,
        supervised=args.supervised,
    )
    config = _apply_overrides(config, args)
    _annotate_obs(config, experiment="serve")
    return run_serve_experiment(
        config, selfcheck=args.selfcheck, slo_exit=args.slo_exit
    )


def cmd_scalability(args) -> int:
    """Legacy alias: FM-alone solve effort vs horizon."""
    from repro.eval.scalability import ScalabilityConfig
    from repro.experiments import run_scalability_experiment

    config = ScalabilityConfig(
        horizons=tuple(args.horizons),
        node_limit=args.node_limit,
        deadline=args.deadline,
    )
    config = _apply_overrides(config, args)
    _annotate_obs(config, experiment="scalability")
    return run_scalability_experiment(config)


# ----------------------------------------------------------------------
# Model-file subcommands (not experiments: they produce/consume .npz
# model artifacts rather than a reproducible report)
# ----------------------------------------------------------------------
def cmd_train(args) -> int:
    """Train the transformer (+KAL) and save its parameters."""
    from repro.eval.scenarios import generate_dataset
    from repro.eval.table1 import Table1Config, train_transformer
    from repro.nn.serialization import save_module

    scenario = _scenario(args)
    train, val, test = generate_dataset(scenario, seed=args.seed)
    config = Table1Config(
        scenario=scenario,
        epochs=args.epochs,
        seed=args.seed,
        dtype=args.dtype,
        workers=args.workers,
    )
    _annotate_obs(config, experiment="train")
    model, seconds = train_transformer(
        train,
        val,
        config,
        use_kal=not args.no_kal,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    save_module(model, args.out)
    print(
        f"trained on {len(train)} windows in {seconds:.0f}s "
        f"(KAL={'off' if args.no_kal else 'on'}) -> {args.out}"
    )
    print(f"val/test windows available: {len(val)}/{len(test)}")
    return 0


def cmd_impute(args) -> int:
    """Load a trained model, impute the test split, report consistency."""
    from repro.constraints import check_constraints
    from repro.eval.scenarios import generate_dataset
    from repro.eval.table1 import Table1Config
    from repro.imputation import ConstraintEnforcer
    from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer
    from repro.nn.serialization import load_module

    scenario = _scenario(args)
    train, _, test = generate_dataset(scenario, seed=args.seed, selfcheck=args.selfcheck)
    table_config = Table1Config(scenario=scenario, seed=args.seed)
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=table_config.d_model,
            num_heads=table_config.num_heads,
            num_layers=table_config.num_layers,
            d_ff=table_config.d_ff,
        ),
        train.scaler,
        seed=args.seed,
    )
    load_module(model, args.model)
    enforcer = ConstraintEnforcer(test.switch_config)

    satisfied = 0
    mae_total = 0.0
    for sample in test.samples:
        imputed = enforcer.enforce(model.impute(sample), sample)
        if args.selfcheck:
            from repro.testing.selfcheck import selfcheck_enforced

            selfcheck_enforced(imputed, sample, test.switch_config)
        report = check_constraints(imputed, sample, test.switch_config)
        satisfied += report.satisfied
        mae_total += float(np.abs(imputed - sample.target_raw).mean())
    print(
        f"imputed {len(test)} windows: {satisfied}/{len(test)} constraint-"
        f"satisfied, MAE {mae_total / max(len(test), 1):.3f} packets"
    )
    return 0 if satisfied == len(test) else 1


def cmd_verify(args) -> int:
    """Audit a trained model against the switch constraints (C1-C3)."""
    from repro.eval.scenarios import generate_dataset
    from repro.eval.table1 import Table1Config
    from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer
    from repro.nn.serialization import load_module
    from repro.verify import ConstraintVerifier

    scenario = _scenario(args)
    train, _, test = generate_dataset(scenario, seed=args.seed)
    table_config = Table1Config(scenario=scenario, seed=args.seed)
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=table_config.d_model,
            num_heads=table_config.num_heads,
            num_layers=table_config.num_layers,
            d_ff=table_config.d_ff,
        ),
        train.scaler,
        seed=args.seed,
    )
    load_module(model, args.model)
    verifier = ConstraintVerifier(test, tolerance=args.tolerance)
    report = verifier.verify(model, perturbations=args.perturbations, seed=args.seed)
    print(report.summary())
    return 0 if report.tolerant_rate >= args.required_rate else 1


def cmd_obs(args) -> int:
    """Delegate to the observability toolbox (``python -m repro.obs``).

    ``repro obs summary --metrics m.json``, ``repro obs export t.jsonl``,
    and ``repro obs validate t.jsonl`` all pass through unchanged.
    """
    from repro.obs.__main__ import main as obs_main

    return obs_main(list(args.obs_args))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    from repro.experiments import iter_experiments

    parser = argparse.ArgumentParser(
        prog="repro",
        description="FM+ML telemetry imputation (HotNets '23 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--profile", choices=("paper", "quick"), default="quick")
        p.add_argument("--seed", type=int, default=0)

    def settable(p):
        p.add_argument(
            "--set",
            dest="overrides",
            action="append",
            metavar="KEY=VALUE",
            default=[],
            help="override a config field by dotted path "
            "(e.g. --set scenario.duration_bins=4000); repeatable",
        )

    def selfcheckable(p):
        p.add_argument(
            "--selfcheck",
            action="store_true",
            help="run the invariant oracles inline; violations abort with a "
            "serialized repro (off by default)",
        )

    def observable(p, profile_alias=False):
        """Add the opt-in observability flags (see docs/observability.md).

        ``--profile`` is taken by the legacy subcommands (scenario
        profile ``paper``/``quick``), so the cProfile flag is spelled
        ``--profile-dir`` everywhere and additionally aliased to
        ``--profile`` on conflict-free parsers (``repro run ...``,
        ``repro scalability``).
        """
        p.add_argument(
            "--trace",
            type=Path,
            nargs="?",
            const=Path("repro-trace.jsonl"),
            default=None,
            metavar="PATH",
            help="append wall-clock spans to PATH as Chrome-trace JSONL "
            "(default repro-trace.jsonl; load via `repro obs export`)",
        )
        p.add_argument(
            "--metrics",
            type=Path,
            nargs="?",
            const=Path("repro-metrics.json"),
            default=None,
            metavar="PATH",
            help="snapshot counters/gauges/histograms/series to PATH "
            "(default repro-metrics.json; accumulates across runs)",
        )
        flags = ["--profile-dir"] + (["--profile"] if profile_alias else [])
        p.add_argument(
            *flags,
            dest="obs_profile",
            type=Path,
            nargs="?",
            const=Path("repro-profile"),
            default=None,
            metavar="DIR",
            help="cProfile each pipeline stage into DIR "
            "(default repro-profile/): .pstats + top-25 cumulative report",
        )
        p.add_argument(
            "--status-file",
            dest="status_file",
            type=Path,
            nargs="?",
            const=Path("repro-status.jsonl"),
            default=None,
            metavar="PATH",
            help="append live status snapshots to PATH while running "
            "(default repro-status.jsonl; tail with `repro obs top`)",
        )
        p.add_argument(
            "--status-interval",
            dest="status_interval",
            type=float,
            default=1.0,
            metavar="SECONDS",
            help="seconds between live status snapshots (default 1.0)",
        )
        p.add_argument(
            "--events",
            dest="events",
            type=Path,
            nargs="?",
            const=Path("repro-events.jsonl"),
            default=None,
            metavar="PATH",
            help="append structured operational events to PATH as JSONL "
            "(respawns, backpressure, SLO breaches, checkpoint saves)",
        )

    # --- repro run <experiment> ---------------------------------------
    p = sub.add_parser(
        "run", help="run a registered experiment from a typed config"
    )
    run_sub = p.add_subparsers(dest="experiment", required=True)
    for experiment in iter_experiments():
        ep = run_sub.add_parser(experiment.name, help=experiment.summary)
        ep.add_argument(
            "--config",
            type=Path,
            help=f"{experiment.config_cls.__name__} as TOML or JSON "
            "(defaults when absent)",
        )
        settable(ep)
        observable(ep, profile_alias=True)
        for option in experiment.cli_options:
            ep.add_argument(*option.flags, dest=option.dest, **dict(option.kwargs))
        ep.set_defaults(func=cmd_run)

    p = sub.add_parser("experiments", help="list the registered experiments")
    p.set_defaults(func=cmd_experiments)

    # --- legacy experiment aliases ------------------------------------
    p = sub.add_parser("simulate", help="simulate a switch trace")
    common(p)
    p.add_argument("--duration", type=int, help="fine bins to simulate")
    p.add_argument("--out", type=Path, default=Path("trace.npz"))
    p.add_argument(
        "--engine",
        choices=("auto", "array", "reference"),
        default="auto",
        help="simulation core (both produce bit-identical traces)",
    )
    p.add_argument(
        "--cache",
        type=Path,
        help="trace cache directory; re-runs skip simulation entirely",
    )
    settable(p)
    selfcheckable(p)
    observable(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("table1", help="regenerate Table 1")
    common(p)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument(
        "--journal",
        type=Path,
        help="result journal (JSONL); completed method columns are "
        "committed durably and skipped on re-run",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="journal to repro-table1.journal.jsonl when --journal is absent",
    )
    settable(p)
    selfcheckable(p)
    observable(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser(
        "serve", help="stream a replayed fleet through the imputation service"
    )
    common(p)
    p.add_argument(
        "--switches", type=int, default=4, help="fleet size to replay"
    )
    p.add_argument(
        "--shards", type=int, default=2, help="worker shards (switches hash-assigned)"
    )
    p.add_argument(
        "--supervised",
        action="store_true",
        help="run shards as supervised worker processes (respawn on crash)",
    )
    p.add_argument(
        "--slo-exit",
        dest="slo_exit",
        action="store_true",
        help="exit 4 when a configured SLO breach is sustained at end of run",
    )
    settable(p)
    selfcheckable(p)
    observable(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("scalability", help="FM-alone scaling study")
    p.add_argument("--horizons", type=int, nargs="+", default=[8, 16, 32])
    p.add_argument("--node-limit", type=int, default=2_000)
    p.add_argument(
        "--deadline",
        type=float,
        help="wall-clock seconds per solve; expired solves return their "
        "best incumbent flagged as timed out instead of hanging",
    )
    settable(p)
    observable(p, profile_alias=True)
    p.set_defaults(func=cmd_scalability)

    # --- model-file subcommands ---------------------------------------
    p = sub.add_parser("train", help="train the transformer imputer")
    common(p)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--no-kal", action="store_true", help="disable the knowledge-augmented loss")
    p.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default="float32",
        help="training precision; float64 reproduces the reference kernels bit-for-bit",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="gradient worker processes (results are worker-count independent)",
    )
    p.add_argument("--out", type=Path, default=Path("model.npz"))
    p.add_argument(
        "--checkpoint",
        type=Path,
        help="write an atomic, checksummed training checkpoint here every epoch",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from an existing --checkpoint instead of epoch 0",
    )
    observable(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("impute", help="impute the test split with a trained model")
    common(p)
    p.add_argument("--model", type=Path, required=True)
    selfcheckable(p)
    observable(p)
    p.set_defaults(func=cmd_impute)

    p = sub.add_parser("verify", help="audit a trained model against C1-C3")
    common(p)
    p.add_argument("--model", type=Path, required=True)
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument("--perturbations", type=int, default=0)
    p.add_argument(
        "--required-rate",
        type=float,
        default=0.0,
        help="exit non-zero if the within-tolerance rate falls below this",
    )
    observable(p)
    p.set_defaults(func=cmd_verify)

    # --- observability artifact inspection ----------------------------
    p = sub.add_parser(
        "obs",
        help="inspect observability artifacts (summary / export / validate)",
    )
    p.add_argument(
        "obs_args",
        nargs=argparse.REMAINDER,
        metavar="...",
        help="arguments for `python -m repro.obs` (try `repro obs --help`)",
    )
    p.set_defaults(func=cmd_obs)

    return parser


def _resumable(args) -> bool:
    """Whether an interrupted command's progress is journal/checkpoint-saved."""
    if args.command in ("train", "table1"):
        return True
    return args.command == "run" and getattr(args, "experiment", None) == "table1"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Domain errors (infeasible CEM input, unsupported engine, a bad
    ``--cache`` path, an invalid config file or ``--set`` override,
    self-check violations) are reported on stderr with a non-zero exit
    code instead of a traceback.
    """
    from repro.config import ConfigError
    from repro.imputation.cem import CEMInfeasibleError
    from repro.serve.errors import ServeError
    from repro.switchsim.engine import EngineUnsupported
    from repro.testing.selfcheck import SelfCheckError

    args = build_parser().parse_args(argv)
    obs_requested = any(
        getattr(args, dest, None) is not None
        for dest in ("trace", "metrics", "obs_profile", "status_file", "events")
    )
    if obs_requested:
        import repro.obs as obs

        obs.configure(
            trace=getattr(args, "trace", None),
            metrics=getattr(args, "metrics", None),
            profile=getattr(args, "obs_profile", None),
            status=getattr(args, "status_file", None),
            status_interval=getattr(args, "status_interval", 1.0),
            events=getattr(args, "events", None),
            header={
                "argv": list(argv) if argv is not None else sys.argv[1:],
                "command": args.command,
            },
        )
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed stdout (e.g. `repro obs summary |
        # head`); exit quietly with the conventional SIGPIPE status and
        # detach stdout so the interpreter's shutdown flush stays silent.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except KeyboardInterrupt:
        # Pool workers are daemonic (terminated with us) and the journal /
        # checkpoint flush on every write, so there is nothing left to save.
        hint = " (progress saved; resumable with --resume)" if _resumable(args) else ""
        print(f"\ninterrupted{hint}", file=sys.stderr)
        return 130
    except ConfigError as exc:
        print(f"error: invalid configuration: {exc}", file=sys.stderr)
        return 2
    except CEMInfeasibleError as exc:
        print(f"error: constraint enforcement infeasible: {exc}", file=sys.stderr)
        return 2
    except SelfCheckError as exc:
        print(f"error: self-check violation: {exc}", file=sys.stderr)
        return 3
    except ServeError as exc:
        print(f"error: streaming service degraded: {exc}", file=sys.stderr)
        return 2
    except EngineUnsupported as exc:
        print(
            f"error: --engine array cannot reproduce this configuration: {exc}\n"
            "hint: use --engine auto (falls back) or --engine reference",
            file=sys.stderr,
        )
        return 2
    except NotADirectoryError as exc:
        print(
            f"error: --cache must point to a directory: {exc}",
            file=sys.stderr,
        )
        return 2
    finally:
        if obs_requested:
            # Flush + write final artifacts even on error/interrupt, and
            # disable so chained in-process main() calls don't leak state.
            import repro.obs as obs

            obs.finish()


if __name__ == "__main__":
    sys.exit(main())
