"""Differential harnesses: fast implementations vs their reference twins.

Each harness takes one serializable case (:mod:`repro.testing.strategies`)
and returns ``None`` when the implementations agree, or a human-readable
detail string describing the first divergence:

* :func:`diff_engines` — :class:`~repro.switchsim.engine.ArraySwitchEngine`
  vs the reference per-packet :class:`~repro.switchsim.switch.
  OutputQueuedSwitch` loop, compared bit-for-bit on every trace field
  (plus the invariant oracles on the reference trace, so a bug shared by
  both engines still surfaces);
* :func:`diff_cem` — the combinatorial :class:`~repro.imputation.cem.
  ConstraintEnforcer` vs the :class:`~repro.fm.cem_milp.MilpCem`
  reference: both must agree on feasibility, both outputs must satisfy
  C1–C3, and the L1 correction costs must match (both projections are
  optimal, so equal cost is the equivalence criterion — the argmin need
  not be unique);
* :func:`diff_cem_vectorized` — the vectorized CEM projection passes vs
  the per-interval reference loop they replaced, compared *bit-exactly*
  (same zeroed queues, same raised samples) including infeasibility
  agreement;
* :func:`diff_simplex` — the native two-phase simplex + branch-and-bound
  vs exhaustive enumeration over small all-integer domains;
* :func:`diff_cem_misleading` — CEM under *misleading* predictions
  (all-zeros / uniform-random inputs): the projection must still emit
  constraint-satisfying output (zero residual) or declare infeasibility,
  never silently violate C1–C3.  The harness additionally accumulates
  how *wrong* the constraint-satisfying output can be (max/mean EMD vs
  the true series, :data:`MISLEADING_STATS`) — quantifying the paper's
  caveat that constraints make output consistent, not correct.

:func:`run_fuzz` drives the harnesses over seeded random cases and
greedily minimizes every discrepancy before reporting it; the nightly CI
job is a thin wrapper around it (:mod:`repro.testing.fuzz`).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.testing.minimize import minimize_case
from repro.testing.oracles import OracleViolation, check_trace_invariants
from repro.testing.strategies import (
    SHRINKERS,
    CemCase,
    EngineCase,
    LpCase,
    random_cem_case,
    random_engine_case,
    random_lp_case,
)

#: Trace fields compared bit-for-bit by the engine harness.
TRACE_FIELDS = (
    "qlen",
    "qlen_max",
    "received",
    "sent",
    "dropped",
    "delay_sum",
    "buffer_occupancy",
)


def compare_traces(reference, candidate) -> str | None:
    """First field where two traces differ, or None when bit-identical."""
    for name in TRACE_FIELDS:
        left = getattr(reference, name)
        right = getattr(candidate, name)
        if left.shape != right.shape:
            return f"{name}: shape {left.shape} vs {right.shape}"
        diff = np.nonzero(left != right)
        if diff[0].size:
            where = tuple(int(d[0]) for d in diff)
            return (
                f"{name}{list(where)}: reference {left[where]} vs "
                f"candidate {right[where]}"
            )
    return None


# ----------------------------------------------------------------------
# Harnesses
# ----------------------------------------------------------------------
def diff_engines(case: EngineCase) -> str | None:
    """Array engine vs reference loop on one randomized configuration."""
    from repro.switchsim.simulation import Simulation

    config = case.switch_config()
    reference = Simulation(
        config, case.build_traffic(), steps_per_bin=case.steps_per_bin,
        engine="reference",
    ).run(case.num_bins)
    candidate = Simulation(
        config, case.build_traffic(), steps_per_bin=case.steps_per_bin,
        engine="array",
    ).run(case.num_bins)
    detail = compare_traces(reference, candidate)
    if detail is not None:
        return detail
    try:
        check_trace_invariants(reference)
    except OracleViolation as violation:
        return f"shared invariant violation: {violation}"
    return None


def diff_cem(case: CemCase) -> str | None:
    """Combinatorial CEM vs the MILP reference on one tiny window."""
    from repro.fm.cem_milp import MilpCem
    from repro.imputation.cem import CEMInfeasibleError, ConstraintEnforcer
    from repro.testing.oracles import check_cem_exactness

    sample, imputed = case.build()
    config = case.switch_config()
    enforcer = ConstraintEnforcer(config)
    milp = MilpCem(config, lp_backend="scipy")

    try:
        greedy = enforcer.enforce(imputed, sample)
    except CEMInfeasibleError as error:
        reference = milp.enforce(imputed, sample)
        if reference.status == "sat":
            return (
                f"greedy CEM declared infeasible ({error}) but the MILP found "
                f"a projection with objective {reference.objective:.6g}"
            )
        return None  # both infeasible: agreement

    try:
        check_cem_exactness(greedy, sample, config)
    except OracleViolation as violation:
        return f"greedy output inexact: {violation}"

    reference = milp.enforce(imputed, sample)
    if reference.status != "sat":
        return f"greedy CEM succeeded but the MILP reported {reference.status}"
    try:
        check_cem_exactness(reference.corrected, sample, config)
    except OracleViolation as violation:
        return f"MILP output inexact: {violation}"

    greedy_cost = enforcer.correction_cost(imputed, greedy, sample)
    if abs(greedy_cost - reference.objective) > 1e-6:
        return (
            f"correction cost diverged: greedy {greedy_cost:.6g} vs "
            f"MILP optimum {reference.objective:.6g}"
        )
    return None


def diff_cem_vectorized(case: CemCase) -> str | None:
    """Vectorized CEM passes vs the per-interval reference loop.

    Unlike :func:`diff_cem` (which accepts any equal-cost projection),
    the vectorized rewrite promises *bit-exact* float64 agreement with
    the loop it replaced — same zeroed queues, same raised samples, byte
    for byte.  Infeasibility must also agree, though the two paths may
    word their diagnostics differently.
    """
    from repro.imputation.cem import CEMInfeasibleError, ConstraintEnforcer

    sample, imputed = case.build()
    config = case.switch_config()
    reference = ConstraintEnforcer(config, vectorized=False)
    vectorized = ConstraintEnforcer(config, vectorized=True)

    try:
        expected = reference.enforce(imputed, sample)
    except CEMInfeasibleError as error:
        try:
            vectorized.enforce(imputed, sample)
        except CEMInfeasibleError:
            return None  # both infeasible: agreement
        return (
            f"reference CEM declared infeasible ({error}) but the vectorized "
            "passes produced a projection"
        )

    try:
        actual = vectorized.enforce(imputed, sample)
    except CEMInfeasibleError as error:
        return (
            f"vectorized CEM declared infeasible ({error}) but the reference "
            "loop produced a projection"
        )

    if expected.shape != actual.shape:
        return f"shape diverged: reference {expected.shape} vs vectorized {actual.shape}"
    diff = np.nonzero(expected != actual)
    if diff[0].size:
        where = tuple(int(d[0]) for d in diff)
        return (
            f"corrected[{list(where)}]: reference {expected[where]!r} vs "
            f"vectorized {actual[where]!r} (bit-exact agreement required)"
        )
    return None


def _lp_case_formulas(case: LpCase):
    from repro.smt import IntVar, Sum

    variables = [IntVar(f"x{i}", 0, d) for i, d in enumerate(case.domains)]
    formulas = []
    for constraint in case.constraints:
        expr = Sum(c * v for c, v in zip(constraint["coeffs"], variables))
        if constraint["sense"] == "<=":
            formulas.append(expr <= constraint["rhs"])
        elif constraint["sense"] == ">=":
            formulas.append(expr >= constraint["rhs"])
        else:
            formulas.append(expr.eq(constraint["rhs"]))
    objective = Sum(c * v for c, v in zip(case.objective, variables))
    return variables, formulas, objective


def _lp_case_brute_force(case: LpCase) -> int | None:
    """Optimal objective value by exhaustive enumeration, None if unsat."""
    best = None
    for values in itertools.product(*(range(d + 1) for d in case.domains)):
        feasible = True
        for constraint in case.constraints:
            total = sum(c * v for c, v in zip(constraint["coeffs"], values))
            if constraint["sense"] == "<=" and total > constraint["rhs"]:
                feasible = False
            elif constraint["sense"] == ">=" and total < constraint["rhs"]:
                feasible = False
            elif constraint["sense"] == "==" and total != constraint["rhs"]:
                feasible = False
            if not feasible:
                break
        if feasible:
            score = sum(c * v for c, v in zip(case.objective, values))
            best = score if best is None else min(best, score)
    return best


def diff_simplex(case: LpCase) -> str | None:
    """Native simplex + branch-and-bound vs brute-force enumeration."""
    from repro.smt import Solver

    variables, formulas, objective = _lp_case_formulas(case)
    brute = _lp_case_brute_force(case)

    solver = Solver(lp_backend="native")
    solver.add(*formulas)
    result = solver.minimize(objective)

    if brute is None:
        return None if result.status == "unsat" else (
            f"enumeration says unsat but solver returned {result.status}"
        )
    if not result.is_sat:
        return f"enumeration found optimum {brute} but solver returned {result.status}"
    if abs(result.objective - brute) > 1e-6:
        return (
            f"objective diverged: solver {result.objective:.6g} vs "
            f"enumeration {brute}"
        )
    model = {v: result.model[v] for v in variables}
    for value, domain in zip(model.values(), case.domains):
        if not (-1e-6 <= value <= domain + 1e-6):
            return f"solver model value {value} outside domain [0, {domain}]"
    return None


@dataclass
class MisleadingStats:
    """What the ``cem_misleading`` harness measured across one run.

    ``max_emd``/``mean_emd`` quantify how far a constraint-*satisfying*
    projection can sit from the truth when the prediction it started from
    was garbage — the residual is zero, the error is not.
    """

    cases: int = 0
    infeasible: int = 0  # CEM (correctly) refused the input
    enforced: int = 0  # CEM produced constraint-satisfying output
    max_emd: float = 0.0  # worst post-CEM EMD vs the true series
    sum_emd: float = 0.0
    worst_case: dict | None = None  # serialized case behind max_emd

    @property
    def mean_emd(self) -> float:
        return self.sum_emd / self.enforced if self.enforced else 0.0

    def reset(self) -> None:
        self.cases = 0
        self.infeasible = 0
        self.enforced = 0
        self.max_emd = 0.0
        self.sum_emd = 0.0
        self.worst_case = None

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "infeasible": self.infeasible,
            "enforced": self.enforced,
            "max_emd": self.max_emd,
            "mean_emd": self.mean_emd,
            "worst_case": self.worst_case,
        }


#: Accumulated by :func:`diff_cem_misleading`; reset per :func:`run_fuzz`.
MISLEADING_STATS = MisleadingStats()


def random_misleading_cem_case(rng) -> CemCase:
    """A CEM case whose input is deliberately wildly wrong."""
    case = random_cem_case(rng)
    kind = ("zeros", "random")[int(rng.integers(2))]
    return dataclasses.replace(case, input_kind=kind)


def diff_cem_misleading(case: CemCase) -> str | None:
    """CEM on a misleading prediction: zero residual or declared infeasible.

    A discrepancy is output that claims success while violating C1–C3.
    Infeasibility is *not* a discrepancy — refusing garbage is correct
    behaviour.  Side effect: accumulates the post-CEM EMD against the
    true series into :data:`MISLEADING_STATS`.
    """
    from repro.constraints.spec import check_constraints
    from repro.imputation.cem import CEMInfeasibleError, ConstraintEnforcer
    from repro.nn.losses import emd_numpy

    sample, imputed = case.build()
    config = case.switch_config()
    enforcer = ConstraintEnforcer(config, vectorized=True)
    MISLEADING_STATS.cases += 1
    try:
        corrected = enforcer.enforce(imputed, sample)
    except CEMInfeasibleError:
        MISLEADING_STATS.infeasible += 1
        return None
    report = check_constraints(corrected, sample, config)
    if not report.satisfied:
        return (
            "post-CEM constraints unsatisfied on a misleading input "
            f"(kind={case.input_kind!r}): C1 {report.max_error:.3g} "
            f"C2 {report.periodic_error:.3g} C3 {report.sent_error:.3g}"
        )
    emd = float(
        np.mean(
            [
                emd_numpy(corrected[q], sample.target_raw[q])
                for q in range(corrected.shape[0])
            ]
        )
    )
    MISLEADING_STATS.enforced += 1
    MISLEADING_STATS.sum_emd += emd
    if emd > MISLEADING_STATS.max_emd:
        MISLEADING_STATS.max_emd = emd
        MISLEADING_STATS.worst_case = case.to_dict()
    return None


#: harness name -> (diff function, random case factory)
HARNESSES: dict[str, tuple[Callable, Callable]] = {
    "engine": (diff_engines, random_engine_case),
    "cem": (diff_cem, random_cem_case),
    "cem_vectorized": (diff_cem_vectorized, random_cem_case),
    "lp": (diff_simplex, random_lp_case),
    "cem_misleading": (diff_cem_misleading, random_misleading_cem_case),
}

_CASE_TYPES = {
    "engine": EngineCase,
    "cem": CemCase,
    "cem_vectorized": CemCase,
    "lp": LpCase,
    "cem_misleading": CemCase,
}


# ----------------------------------------------------------------------
# Fuzz driver
# ----------------------------------------------------------------------
@dataclass
class Discrepancy:
    """One confirmed divergence, with its minimized repro."""

    harness: str
    detail: str
    case: dict  # minimized case, serialized
    original_case: dict

    def render(self) -> str:
        return (
            f"[{self.harness}] {self.detail}\n"
            f"repro: {json.dumps(self.case, sort_keys=True)}"
        )


@dataclass
class FuzzReport:
    """Outcome of a fuzz run: cases executed and discrepancies found."""

    cases_run: dict[str, int] = field(default_factory=dict)
    discrepancies: list[Discrepancy] = field(default_factory=list)
    #: per-harness side-channel measurements (e.g. cem_misleading EMDs)
    stats: dict[str, dict] = field(default_factory=dict)

    @property
    def total_cases(self) -> int:
        return sum(self.cases_run.values())

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        per_harness = ", ".join(f"{k}={v}" for k, v in sorted(self.cases_run.items()))
        status = "OK" if self.ok else f"{len(self.discrepancies)} DISCREPANCIES"
        return f"fuzz: {self.total_cases} cases ({per_harness}) — {status}"


def _minimized(harness: str, diff: Callable, case) -> Discrepancy:
    detail = diff(case)

    def still_fails(candidate) -> bool:
        try:
            return diff(candidate) is not None
        except Exception:
            # A shrunk case that crashes outright is a *different* bug;
            # don't chase it while minimizing this one.
            return False

    small = minimize_case(case, still_fails, SHRINKERS[type(case)])
    return Discrepancy(
        harness=harness,
        detail=diff(small) or detail,
        case=small.to_dict(),
        original_case=case.to_dict(),
    )


def run_fuzz(
    seed: int = 0,
    engine_cases: int = 0,
    cem_cases: int = 0,
    lp_cases: int = 0,
    cem_vectorized_cases: int = 0,
    cem_misleading_cases: int = 0,
    minimize: bool = True,
    max_discrepancies: int = 5,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run the differential harnesses over seeded random cases.

    Deterministic given ``seed`` and the case counts.  Stops collecting
    after ``max_discrepancies`` failures (minimization dominates the cost
    of a failing run).
    """
    report = FuzzReport()
    MISLEADING_STATS.reset()
    budgets = {
        "engine": engine_cases,
        "cem": cem_cases,
        "lp": lp_cases,
        "cem_vectorized": cem_vectorized_cases,
        "cem_misleading": cem_misleading_cases,
    }
    # Stable sub-stream ids: appending a harness must not reshuffle the
    # cases the existing harnesses see for a given seed.
    streams = {
        "engine": 1,
        "cem": 2,
        "lp": 3,
        "cem_vectorized": 4,
        "cem_misleading": 5,
    }
    for harness, budget in budgets.items():
        diff, make_case = HARNESSES[harness]
        rng = np.random.default_rng([seed, streams[harness]])
        for index in range(budget):
            case = make_case(rng)
            detail = diff(case)
            report.cases_run[harness] = report.cases_run.get(harness, 0) + 1
            if detail is not None:
                if minimize:
                    report.discrepancies.append(_minimized(harness, diff, case))
                else:
                    report.discrepancies.append(
                        Discrepancy(harness, detail, case.to_dict(), case.to_dict())
                    )
                if log:
                    log(f"{harness} case {index}: {detail}")
                if len(report.discrepancies) >= max_discrepancies:
                    return _with_stats(report)
            elif log and (index + 1) % 25 == 0:
                log(f"{harness}: {index + 1}/{budget} cases clean")
    return _with_stats(report)


def _with_stats(report: FuzzReport) -> FuzzReport:
    if MISLEADING_STATS.cases:
        report.stats["cem_misleading"] = MISLEADING_STATS.to_dict()
    return report


# ----------------------------------------------------------------------
# Seed corpus
# ----------------------------------------------------------------------
def replay_corpus(path: str | Path) -> FuzzReport:
    """Re-run every case in a corpus file (see ``tests/corpus/``).

    The corpus pins previously interesting configurations — near-boundary
    buffer sizes, single-port switches, degenerate traffic — so refactors
    are always exercised against them before the random sweep.
    """
    data = json.loads(Path(path).read_text())
    report = FuzzReport()
    for harness, cases in data.items():
        diff, _ = HARNESSES[harness]
        case_type = _CASE_TYPES[harness]
        for entry in cases:
            case = case_type.from_dict(entry)
            detail = diff(case)
            report.cases_run[harness] = report.cases_run.get(harness, 0) + 1
            if detail is not None:
                report.discrepancies.append(
                    Discrepancy(harness, detail, case.to_dict(), case.to_dict())
                )
    return report


def write_corpus(path: str | Path, cases: dict[str, Sequence]) -> None:
    """Serialize a harness->cases mapping as a corpus file."""
    payload = {
        harness: [case.to_dict() for case in entries]
        for harness, entries in cases.items()
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
