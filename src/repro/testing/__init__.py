"""Invariant oracles, differential fuzzing, and runtime self-checks.

The simulator, the CEM, and the SMT core each exist twice in this repo — a
fast implementation and a slower reference twin — and the paper's whole
argument rests on their outputs being *exactly* right.  This package turns
that correctness story into reusable machinery instead of per-test spot
checks:

* :mod:`repro.testing.oracles` — physical invariants (packet conservation,
  shared-buffer bounds, Dynamic-Threshold admission, work conservation,
  C1–C3 consistency, CEM exactness, finite-difference gradient checks)
  stated once and imported by the test suite, the fuzz harnesses, and the
  runtime hooks alike;
* :mod:`repro.testing.strategies` — randomized-but-serializable test-case
  constructors shared by the property tests and the fuzzer, so a failure
  always reduces to a small JSON repro config;
* :mod:`repro.testing.differential` — harnesses that diff the fast
  implementations against their reference twins (ArraySwitchEngine vs the
  per-packet loop, combinatorial CEM vs the MILP formulation, native
  simplex vs brute-force enumeration);
* :mod:`repro.testing.minimize` — greedy counterexample shrinking (bisect
  the time horizon, drop ports/queues, thin the traffic) so a fuzz failure
  lands as a ~10-line repro instead of a 12 000-bin trace;
* :mod:`repro.testing.selfcheck` — cheap inline oracles behind the
  ``selfcheck=`` option of :class:`~repro.switchsim.simulation.Simulation`
  / :func:`~repro.eval.scenarios.generate_trace` and the ``--selfcheck``
  CLI flag; violations raise :class:`SelfCheckError` carrying a serialized
  minimal repro;
* :mod:`repro.testing.golden` — content fingerprints of traces for golden
  regression tests that pin the RNG stream layout (``TRAFFIC_REV``);
* :mod:`repro.testing.stream` — the deterministic stream-test harness:
  golden fleet replays through :mod:`repro.serve` pinned bit-identical to
  the offline batch pipeline on the same windows;
* :mod:`repro.testing.fuzz` — the command-line fuzz runner used by the
  nightly CI job (``python -m repro.testing.fuzz``).
"""

from repro.testing.oracles import (
    OracleViolation,
    check_buffer_occupancy,
    check_cem_exactness,
    check_dataset_consistency,
    check_dt_admission_bound,
    check_gradients,
    check_packet_conservation,
    check_trace_invariants,
    check_work_conservation,
    finite_difference_gradient,
)
from repro.testing.golden import trace_fingerprint
from repro.testing.selfcheck import SelfCheckError, selfcheck_enforced, selfcheck_trace
from repro.testing.strategies import (
    CemCase,
    EngineCase,
    LpCase,
    build_case_traffic,
    random_cem_case,
    random_engine_case,
    random_lp_case,
)
from repro.testing.differential import (
    Discrepancy,
    FuzzReport,
    diff_cem,
    diff_engines,
    diff_simplex,
    replay_corpus,
    run_fuzz,
)
from repro.testing.minimize import minimize_case
from repro.testing.stream import (
    assert_stream_matches_offline,
    fleet_record_schedule,
    offline_windows,
    replay,
)

__all__ = [
    "OracleViolation",
    "SelfCheckError",
    "check_buffer_occupancy",
    "check_cem_exactness",
    "check_dataset_consistency",
    "check_dt_admission_bound",
    "check_gradients",
    "check_packet_conservation",
    "check_trace_invariants",
    "check_work_conservation",
    "finite_difference_gradient",
    "selfcheck_enforced",
    "selfcheck_trace",
    "trace_fingerprint",
    "CemCase",
    "EngineCase",
    "LpCase",
    "build_case_traffic",
    "random_cem_case",
    "random_engine_case",
    "random_lp_case",
    "Discrepancy",
    "FuzzReport",
    "diff_cem",
    "diff_engines",
    "diff_simplex",
    "replay_corpus",
    "run_fuzz",
    "minimize_case",
    "assert_stream_matches_offline",
    "fleet_record_schedule",
    "offline_windows",
    "replay",
]
