"""Greedy counterexample minimization for differential-fuzz failures.

A raw fuzz failure is a large randomized configuration; what a human needs
is the smallest case that still diverges.  :func:`minimize_case` runs the
classic greedy shrink loop (delta debugging without the set partitioning —
the shrinkers in :mod:`repro.testing.strategies` already know the
structure of each case type): try every candidate reduction in order,
restart from the first one that still fails, stop at a fixpoint.

Shrinkers yield candidates most-aggressive-first (bisect the time horizon,
then drop ports/queues, then thin the traffic), so the loop converges in
``O(log)`` of the original size along each axis.  The ``still_fails``
predicate is expected to swallow unrelated crashes and return False for
them — shrinking must not wander from one bug to a different one.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

Case = TypeVar("Case")


def minimize_case(
    case: Case,
    still_fails: Callable[[Case], bool],
    shrink: Callable[[Case], Iterable[Case]],
    max_steps: int = 200,
) -> Case:
    """Smallest case (under ``shrink``'s reductions) that still fails.

    ``case`` itself is assumed failing; returns it unchanged when every
    reduction passes.  ``max_steps`` bounds the number of *successful*
    reductions, a safety net against shrinkers that loop.
    """
    for _ in range(max_steps):
        for candidate in shrink(case):
            if still_fails(candidate):
                case = candidate
                break
        else:
            return case  # fixpoint: no reduction still fails
    return case
