"""Physical invariant oracles for traces, CEM outputs, and gradients.

Each oracle states one property that must hold for *every* correct
implementation, independent of which engine or solver produced the data:

* :func:`check_packet_conservation` — per port, arrivals = departures +
  drops + backlog change (flow conservation through the switch);
* :func:`check_buffer_occupancy` — the recorded shared-buffer occupancy
  equals the summed queue lengths and never exceeds capacity;
* :func:`check_dt_admission_bound` — Dynamic-Threshold admission caps any
  queue at ``alpha * B / (1 + alpha) + 1`` packets (Choudhury & Hahne's
  steady bound: admission requires ``len < alpha * (B - occ)`` and
  ``occ >= len``);
* :func:`check_work_conservation` — a port with a non-empty queue at a
  bin's end transmitted during the bin, and no port exceeds line rate;
* :func:`check_dataset_consistency` — the ground truth of every imputation
  window satisfies the paper's constraints C1–C3 against its own coarse
  measurements (the end-to-end telemetry path is self-consistent);
* :func:`check_cem_exactness` — a CEM-corrected series satisfies C1–C3
  exactly, keeps sampled bins pinned, and stays non-negative;
* :func:`check_gradients` — autodiff gradients match central finite
  differences (the correctness anchor of the losses/KAL stack).

Oracles raise :class:`OracleViolation` with a human-readable detail; they
return nothing on success so callers can chain them cheaply.  The
functions are deliberately vectorised — running every trace oracle costs a
few array passes, which is what makes the runtime ``selfcheck=`` hook
affordable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.switchsim.simulation import SimulationTrace


class OracleViolation(AssertionError):
    """An invariant oracle failed.

    ``oracle`` names the violated invariant; ``detail`` localises the
    failure (port/queue/bin indices and the offending values).
    """

    def __init__(self, oracle: str, detail: str):
        super().__init__(f"{oracle}: {detail}")
        self.oracle = oracle
        self.detail = detail


# ----------------------------------------------------------------------
# Trace oracles
# ----------------------------------------------------------------------
def _port_backlog(trace: SimulationTrace) -> np.ndarray:
    """(P, bins) summed queue lengths of each port at bin end."""
    cfg = trace.config
    return trace.qlen.reshape(cfg.num_ports, cfg.queues_per_port, -1).sum(axis=1)


def check_packet_conservation(
    trace: SimulationTrace, initial_qlen: np.ndarray | None = None
) -> None:
    """Per port and bin: cumulative received = sent + dropped + backlog.

    ``initial_qlen`` is the per-queue backlog at the start of the trace
    (non-zero when ``run`` continued a previous installment); defaults to
    an empty switch.
    """
    cfg = trace.config
    if initial_qlen is None:
        initial = np.zeros(cfg.num_ports, dtype=np.int64)
    else:
        initial = (
            np.asarray(initial_qlen, dtype=np.int64)
            .reshape(cfg.num_ports, cfg.queues_per_port)
            .sum(axis=1)
        )
    flow = np.cumsum(trace.received - trace.sent - trace.dropped, axis=1)
    backlog = _port_backlog(trace) - initial[:, None]
    bad = np.nonzero(flow != backlog)
    if bad[0].size:
        port, b = int(bad[0][0]), int(bad[1][0])
        raise OracleViolation(
            "packet_conservation",
            f"port {port} bin {b}: cumulative received-sent-dropped = "
            f"{int(flow[port, b])} but backlog changed by {int(backlog[port, b])}",
        )


def check_buffer_occupancy(trace: SimulationTrace) -> None:
    """Occupancy equals summed queue lengths and stays within capacity."""
    totals = trace.qlen.sum(axis=0)
    mismatch = np.nonzero(totals != trace.buffer_occupancy)[0]
    if mismatch.size:
        b = int(mismatch[0])
        raise OracleViolation(
            "buffer_occupancy",
            f"bin {b}: queues hold {int(totals[b])} packets but recorded "
            f"occupancy is {int(trace.buffer_occupancy[b])}",
        )
    capacity = trace.config.buffer_capacity
    over = np.nonzero(
        (trace.buffer_occupancy < 0) | (trace.buffer_occupancy > capacity)
    )[0]
    if over.size:
        b = int(over[0])
        raise OracleViolation(
            "buffer_occupancy",
            f"bin {b}: occupancy {int(trace.buffer_occupancy[b])} outside "
            f"[0, {capacity}]",
        )


def check_dt_admission_bound(trace: SimulationTrace) -> None:
    """No queue ever exceeds its Dynamic-Threshold steady bound.

    Admission requires ``len < alpha * (B - occ)`` with ``occ >= len``, so
    a queue of class alpha can never grow past
    ``alpha * B / (1 + alpha) + 1`` packets.
    """
    cfg = trace.config
    capacity = cfg.buffer_capacity
    alphas = np.array(
        [cfg.alphas[q % cfg.queues_per_port] for q in range(cfg.num_queues)]
    )
    bounds = alphas * capacity / (1.0 + alphas) + 1.0
    peak = trace.qlen_max.max(axis=1)
    over = np.nonzero(peak > bounds + 1e-9)[0]
    if over.size:
        q = int(over[0])
        raise OracleViolation(
            "dt_admission_bound",
            f"queue {q} (alpha={alphas[q]:g}) reached {int(peak[q])} packets, "
            f"above the DT bound {bounds[q]:.2f} for capacity {capacity}",
        )


def check_work_conservation(trace: SimulationTrace) -> None:
    """Busy ports transmit; no port exceeds line rate.

    At a bin's end a non-empty queue implies the port dequeued during the
    bin (the step order is arrivals-then-departures), so the count of
    non-empty bins lower-bounds the sent count; and one packet per step
    per port upper-bounds it.
    """
    over = np.nonzero(trace.sent > trace.steps_per_bin)
    if over[0].size:
        p, b = int(over[0][0]), int(over[1][0])
        raise OracleViolation(
            "work_conservation",
            f"port {p} bin {b}: sent {int(trace.sent[p, b])} packets above "
            f"line rate {trace.steps_per_bin}",
        )
    backlog = _port_backlog(trace)
    idle_busy = np.nonzero((backlog > 0) & (trace.sent == 0))
    if idle_busy[0].size:
        p, b = int(idle_busy[0][0]), int(idle_busy[1][0])
        raise OracleViolation(
            "work_conservation",
            f"port {p} bin {b}: queues hold {int(backlog[p, b])} packets at "
            f"bin end but the port sent nothing during the bin",
        )
    negative = np.nonzero(
        (trace.sent < 0) | (trace.dropped < 0) | (trace.received < 0)
    )
    if negative[0].size:
        p, b = int(negative[0][0]), int(negative[1][0])
        raise OracleViolation(
            "work_conservation", f"port {p} bin {b}: negative counter"
        )


#: The cheap whole-trace oracles, in the order the runtime hook runs them.
TRACE_ORACLES: tuple[Callable[..., None], ...] = (
    check_packet_conservation,
    check_buffer_occupancy,
    check_dt_admission_bound,
    check_work_conservation,
)


def check_trace_invariants(
    trace: SimulationTrace, initial_qlen: np.ndarray | None = None
) -> list[str]:
    """Run every trace oracle; returns the names checked.

    Raises :class:`OracleViolation` at the first failure.
    """
    check_packet_conservation(trace, initial_qlen=initial_qlen)
    check_buffer_occupancy(trace)
    check_dt_admission_bound(trace)
    check_work_conservation(trace)
    return [oracle.__name__ for oracle in TRACE_ORACLES]


# ----------------------------------------------------------------------
# Telemetry / CEM oracles
# ----------------------------------------------------------------------
def check_dataset_consistency(dataset, max_samples: int | None = None) -> int:
    """Ground truth of every window satisfies C1–C3 (the paper's claim).

    ``dataset`` is a :class:`~repro.telemetry.dataset.TelemetryDataset`;
    returns the number of windows checked.
    """
    from repro.constraints.spec import check_constraints

    samples = dataset.samples if max_samples is None else dataset.samples[:max_samples]
    for index, sample in enumerate(samples):
        report = check_constraints(sample.target_raw, sample, dataset.switch_config)
        if not report.satisfied:
            raise OracleViolation(
                "dataset_consistency",
                f"window {index} (start bin {sample.window_start}): ground "
                f"truth violates its own measurements — max={report.max_error:.3g} "
                f"periodic={report.periodic_error:.3g} sent={report.sent_error:.3g}",
            )
    return len(samples)


def check_cem_exactness(corrected: np.ndarray, sample, config) -> None:
    """A CEM output satisfies C1–C3 exactly, pins samples, stays >= 0."""
    from repro.constraints.spec import check_constraints

    corrected = np.asarray(corrected, dtype=float)
    if (corrected < -1e-9).any():
        q, t = (int(i[0]) for i in np.nonzero(corrected < -1e-9))
        raise OracleViolation(
            "cem_exactness", f"queue {q} bin {t}: negative value {corrected[q, t]:.3g}"
        )
    pinned = corrected[:, sample.sample_positions]
    if not np.allclose(pinned, sample.m_sample, atol=1e-9):
        raise OracleViolation(
            "cem_exactness",
            "sampled bins were moved away from their measured values "
            f"(max deviation {np.abs(pinned - sample.m_sample).max():.3g})",
        )
    report = check_constraints(corrected, sample, config)
    if not report.satisfied:
        raise OracleViolation(
            "cem_exactness",
            f"corrected series violates C1–C3: max={report.max_error:.3g} "
            f"periodic={report.periodic_error:.3g} sent={report.sent_error:.3g}",
        )


# ----------------------------------------------------------------------
# Gradient oracle
# ----------------------------------------------------------------------
def finite_difference_gradient(
    f: Callable, x0: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central finite differences of a scalar-valued Tensor function."""
    from repro.autodiff import Tensor

    x0 = np.asarray(x0, dtype=float)
    grad = np.zeros_like(x0)
    it = np.nditer(x0, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        plus = x0.copy()
        plus[idx] += eps
        minus = x0.copy()
        minus[idx] -= eps
        grad[idx] = (f(Tensor(plus)).item() - f(Tensor(minus)).item()) / (2 * eps)
    return grad


def check_gradients(
    f: Callable,
    x0: np.ndarray,
    eps: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Autodiff gradient of ``f`` at ``x0`` must match finite differences.

    ``f`` maps a Tensor to a scalar Tensor.  Pick ``x0`` away from
    non-differentiable points (ties in a max, zeros under an abs): finite
    differences straddle the kink there and the comparison is meaningless.
    """
    from repro.autodiff import Tensor

    x = Tensor(np.asarray(x0, dtype=float).copy(), requires_grad=True)
    f(x).backward()
    numeric = finite_difference_gradient(f, x0, eps=eps)
    mismatch = np.abs(x.grad - numeric) - (atol + rtol * np.abs(numeric))
    if (mismatch > 0).any():
        idx = np.unravel_index(int(np.argmax(mismatch)), numeric.shape)
        raise OracleViolation(
            "gradient_check",
            f"at index {idx}: autodiff {x.grad[idx]:.6g} vs finite "
            f"difference {numeric[idx]:.6g}",
        )
