"""Runtime self-checks: cheap oracles inline with simulation and imputation.

The differential fuzzer catches divergence between implementations at test
time; the self-check hooks catch invariant violations *in production runs*
— a corrupted cache entry, a miscompiled numpy, a refactor that slipped
past the suite.  They are off by default and cost a few vectorised array
passes when enabled:

* ``Simulation(..., selfcheck=True)`` / ``generate_trace(...,
  selfcheck=True)`` run the trace oracles (packet conservation, buffer
  occupancy, DT admission bound, work conservation) on every produced
  trace;
* ``ImputationPipeline`` with ``PipelineConfig(selfcheck=True)`` re-checks
  every CEM-corrected window for exact C1–C3 satisfaction;
* the CLI exposes both behind ``--selfcheck``.

A violation raises :class:`SelfCheckError` whose message embeds a
serialized repro — the scenario/sample parameters as compact JSON, small
enough to paste into a bug report or replay through the fuzzer.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from repro.testing.oracles import (
    OracleViolation,
    check_cem_exactness,
    check_trace_invariants,
)


class SelfCheckError(RuntimeError):
    """A runtime invariant oracle failed.

    ``oracle`` names the violated invariant and ``repro`` holds the
    serializable parameters that reproduce the failing computation.
    """

    def __init__(self, oracle: str, detail: str, repro: Mapping[str, Any] | None = None):
        self.oracle = oracle
        self.detail = detail
        self.repro = dict(repro) if repro else {}
        message = f"self-check failed — {oracle}: {detail}"
        if self.repro:
            message += f"\nrepro: {serialize_repro(self.repro)}"
        super().__init__(message)


def serialize_repro(repro: Mapping[str, Any]) -> str:
    """Compact, deterministic JSON for a repro mapping."""

    def default(value):
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
        return repr(value)

    return json.dumps(repro, sort_keys=True, default=default)


def selfcheck_trace(
    trace,
    repro: Mapping[str, Any] | None = None,
    initial_qlen: np.ndarray | None = None,
) -> None:
    """Run the trace oracles; wrap violations into :class:`SelfCheckError`."""
    try:
        check_trace_invariants(trace, initial_qlen=initial_qlen)
    except OracleViolation as violation:
        raise SelfCheckError(violation.oracle, violation.detail, repro) from violation


def selfcheck_enforced(
    corrected: np.ndarray,
    sample,
    config,
    repro: Mapping[str, Any] | None = None,
) -> None:
    """Check a CEM-corrected window; raise with a window-level repro."""
    context = dict(repro or {})
    context.setdefault("window_start", int(sample.window_start))
    context.setdefault("interval", int(sample.interval))
    context.setdefault("num_queues", int(sample.num_queues))
    context.setdefault("num_bins", int(sample.num_bins))
    try:
        check_cem_exactness(corrected, sample, config)
    except OracleViolation as violation:
        raise SelfCheckError(violation.oracle, violation.detail, context) from violation
