"""Deterministic stream-test harness for the serving layer.

The service's headline correctness property — streamed output
bit-identical to the offline ``train → table1`` pipeline on the same
windows — is only testable if the *stream itself* is reproducible.  This
harness provides that: golden fleet scenarios (per-switch simulator
traces under derived seeds), a deterministic interval-major record
schedule, a replay driver that checks the service's accounting while it
runs, and the offline reference computed through the literal batch-path
functions (:func:`~repro.telemetry.dataset.build_dataset` +
``model.impute`` + :class:`~repro.imputation.cem.ConstraintEnforcer`).

Everything here is a pure function of (traces, model, knobs), so a
parity failure reduces to a small, replayable scenario — the same
discipline :mod:`repro.testing.differential` applies to the simulator
and CEM twins.

Imports of the serve machinery are deferred into the functions that need
them, so pulling this harness into :mod:`repro.testing`'s namespace does
not void the serve disabled-path guarantee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.switchsim.simulation import SimulationTrace
from repro.telemetry.dataset import FeatureScaler, build_dataset
from repro.telemetry.sampling import sample_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.records import CoarseRecord, ImputedWindow
    from repro.serve.service import ServeReport, StreamService


def fleet_record_schedule(
    traces: "Mapping[str, SimulationTrace]",
    interval: int,
    max_intervals: int | None = None,
) -> "list[CoarseRecord]":
    """The deterministic arrival order of a replayed fleet.

    Interval-major interleave in sorted switch-id order: every switch's
    record for interval ``j`` arrives before any record for ``j + 1`` —
    what a fleet collector flushing once per interval would deliver.
    """
    from repro.serve.records import records_from_telemetry

    streams = [
        list(
            records_from_telemetry(
                switch_id, sample_trace(traces[switch_id], interval), max_intervals
            )
        )
        for switch_id in sorted(traces)
    ]
    schedule: list = []
    for j in range(max((len(s) for s in streams), default=0)):
        for stream in streams:
            if j < len(stream):
                schedule.append(stream[j])
    return schedule


def replay(
    service: "StreamService",
    records: "list[CoarseRecord]",
) -> "tuple[dict[tuple[str, int], ImputedWindow], ServeReport]":
    """Drive a record schedule through a service; windows keyed by identity.

    Checks the service's own accounting while replaying: no window may be
    emitted twice (the service raises on that itself), and after the
    drain the emitted count must equal the report's.  Returns the windows
    as a ``(switch_id, window_index) → ImputedWindow`` mapping plus the
    final report.
    """
    emitted: dict = {}
    for record in records:
        for window in service.submit(record):
            assert window.key not in emitted, f"duplicate window {window.key}"
            emitted[window.key] = window
    for window in service.drain():
        assert window.key not in emitted, f"duplicate window {window.key}"
        emitted[window.key] = window
    report = service.report()
    assert report.windows == len(emitted), (
        f"service reported {report.windows} windows but emitted {len(emitted)}"
    )
    return emitted, report


def offline_windows(
    model: Any,
    traces: "Mapping[str, SimulationTrace]",
    interval: int,
    window_intervals: int,
    scaler: FeatureScaler,
    use_cem: bool = True,
) -> "dict[tuple[str, int], np.ndarray]":
    """The offline pipeline's output for the same windows the service emits.

    Runs the literal batch-path code: :func:`build_dataset` slices each
    trace into non-overlapping windows under the shared training
    ``scaler``, ``model.impute`` runs the pre-batching per-sample path
    (pinned identical to ``impute_batch``), and the CEM projection uses
    the same :class:`ConstraintEnforcer` defaults as ``table1``'s full
    method.  Keys match the service's ``(switch_id, window_index)``.
    """
    from repro.imputation.cem import ConstraintEnforcer

    reference: dict = {}
    enforcer = None
    for switch_id in sorted(traces):
        dataset = build_dataset(
            traces[switch_id],
            interval=interval,
            window_intervals=window_intervals,
            stride_intervals=window_intervals,
            scaler=scaler,
        )
        if enforcer is None and use_cem:
            enforcer = ConstraintEnforcer(dataset.switch_config, vectorized=True)
        for index, sample in enumerate(dataset.samples):
            imputed = model.impute(sample)
            if enforcer is not None:
                imputed = enforcer.enforce(imputed, sample)
            reference[(switch_id, index)] = imputed
    return reference


def assert_stream_matches_offline(
    streamed: "Mapping[tuple[str, int], ImputedWindow]",
    offline: "Mapping[tuple[str, int], np.ndarray]",
    exact: bool = True,
    rtol: float = 1e-6,
    atol: float = 1e-6,
) -> None:
    """Pin stream/offline parity window by window.

    Every streamed window must exist offline with identical provenance
    and — ``exact=True`` (the float64 guarantee) — a bit-identical value
    array; ``exact=False`` tolerance-pins the float32 path instead.  The
    streamed keys must cover every offline window whose intervals the
    stream ingested (the caller controls coverage via ``max_intervals``),
    so lost windows fail loudly rather than vacuously passing.
    """
    assert streamed, "no windows were streamed"
    missing = set(streamed) - set(offline)
    assert not missing, f"streamed windows with no offline twin: {sorted(missing)}"
    for key in sorted(streamed):
        got = streamed[key].values
        want = offline[key]
        assert got.shape == want.shape, f"{key}: shape {got.shape} != {want.shape}"
        if exact:
            assert np.array_equal(got, want), (
                f"{key}: streamed window differs from offline "
                f"(max abs diff {np.abs(got - want).max()})"
            )
        else:
            np.testing.assert_allclose(
                got, want, rtol=rtol, atol=atol, err_msg=f"window {key}"
            )
