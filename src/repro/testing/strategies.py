"""Randomized-but-serializable test cases for the differential harnesses.

Every case is a flat dataclass of JSON-encodable primitives with
``to_dict``/``from_dict``: the fuzzer draws cases from a seeded RNG, the
minimizer mutates copies of them, and a failure is reported as the
case's JSON — a ~10-line repro config anyone can replay with
``python -m repro.testing.fuzz --replay``.

Three case families mirror the repo's fast/reference implementation pairs:

* :class:`EngineCase` — a switch configuration plus a traffic spec, run
  through both :class:`~repro.switchsim.engine.ArraySwitchEngine` and the
  reference per-packet loop;
* :class:`CemCase` — a tiny simulated scenario plus a perturbed imputation,
  projected by both the combinatorial CEM and the MILP formulation;
* :class:`LpCase` — a small all-integer MILP, solved by the native simplex
  + branch-and-bound and by exhaustive enumeration.

Traffic specs intentionally store *raw* parameters (destination ports may
exceed ``num_ports``); builders clamp with a modulo so the minimizer can
shrink ``num_ports`` without invalidating the spec.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any

import numpy as np

from repro.switchsim.switch import SwitchConfig

_SCHEDULERS = ("rr", "sp")


def _scheduler_factory(name: str):
    from repro.switchsim.scheduler import RoundRobinScheduler, StrictPriorityScheduler

    if name == "rr":
        return RoundRobinScheduler
    if name == "sp":
        return StrictPriorityScheduler
    raise ValueError(f"unknown scheduler {name!r}; expected one of {_SCHEDULERS}")


# ----------------------------------------------------------------------
# Traffic specs
# ----------------------------------------------------------------------
def build_case_traffic(spec: dict, num_ports: int, queues_per_port: int):
    """Materialise a traffic-spec dict into a fresh generator.

    Destinations and queue classes are clamped into range so a spec stays
    valid while the minimizer shrinks the switch underneath it.
    """
    from repro.traffic.distributions import FixedSizes, WebsearchSizes
    from repro.traffic.generators import (
        CompositeTraffic,
        IncastTraffic,
        PoissonFlowTraffic,
        ScriptedTraffic,
    )

    kind = spec["kind"]
    if kind == "poisson":
        sizes = (
            WebsearchSizes() if spec.get("flow_size", 0) <= 0 else FixedSizes(spec["flow_size"])
        )
        return PoissonFlowTraffic(
            num_sources=spec["num_sources"],
            num_ports=num_ports,
            flows_per_step=spec["flows_per_step"],
            sizes=sizes,
            class_weights=(1.0,) * queues_per_port,
            seed=spec["seed"],
        )
    if kind == "incast":
        return IncastTraffic(
            fan_in=spec["fan_in"],
            burst_size=spec["burst_size"],
            period=spec["period"],
            dst_port=spec["dst_port"] % num_ports,
            qclass=min(spec.get("qclass", 0), queues_per_port - 1),
            jitter=spec["jitter"],
            seed=spec["seed"],
            start_step=spec.get("start_step", 0),
        )
    if kind == "scripted":
        script = {
            int(step): [
                (dst % num_ports, min(qclass, queues_per_port - 1))
                for dst, qclass in packets
            ]
            for step, packets in spec["script"].items()
        }
        return ScriptedTraffic(script)
    if kind == "composite":
        return CompositeTraffic(
            [
                build_case_traffic(child, num_ports, queues_per_port)
                for child in spec["children"]
            ]
        )
    raise ValueError(f"unknown traffic kind {kind!r}")


def _random_traffic_spec(rng: np.random.Generator, num_ports: int) -> dict:
    kind = int(rng.integers(4))
    seed = int(rng.integers(2**31))
    if kind == 0:
        return {
            "kind": "poisson",
            "num_sources": int(rng.integers(2, 10)),
            "flows_per_step": round(float(rng.uniform(0.02, 0.4)), 4),
            "flow_size": int(rng.integers(0, 6)),  # 0 → websearch sizes
            "seed": seed,
        }
    if kind == 1:
        return {
            "kind": "incast",
            "fan_in": int(rng.integers(2, 8)),
            "burst_size": int(rng.integers(2, 30)),
            "period": int(rng.integers(10, 60)),
            "dst_port": int(rng.integers(num_ports)),
            "qclass": int(rng.integers(4)),
            "jitter": int(rng.integers(0, 12)),
            "seed": seed,
        }
    if kind == 2:
        script_rng = np.random.default_rng(seed)
        return {
            "kind": "scripted",
            "script": {
                str(int(step)): [
                    [int(script_rng.integers(num_ports)), int(script_rng.integers(4))]
                    for _ in range(int(script_rng.integers(1, 5)))
                ]
                for step in script_rng.integers(0, 200, size=20)
            },
        }
    children_rng = np.random.default_rng(seed)
    return {
        "kind": "composite",
        "children": [
            _random_traffic_spec(children_rng, num_ports)
            for _ in range(int(rng.integers(2, 4)))
        ],
    }


# ----------------------------------------------------------------------
# Engine differential cases
# ----------------------------------------------------------------------
@dataclass
class EngineCase:
    """One randomized configuration for the engine differential harness."""

    num_ports: int
    queues_per_port: int
    buffer_capacity: int
    alphas: list[float]
    scheduler: str  # "rr" | "sp"
    steps_per_bin: int
    num_bins: int
    traffic: dict

    def switch_config(self) -> SwitchConfig:
        return SwitchConfig(
            num_ports=self.num_ports,
            queues_per_port=self.queues_per_port,
            buffer_capacity=self.buffer_capacity,
            alphas=tuple(self.alphas[: self.queues_per_port]),
            scheduler_factory=_scheduler_factory(self.scheduler),
        )

    def build_traffic(self):
        return build_case_traffic(self.traffic, self.num_ports, self.queues_per_port)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EngineCase":
        return cls(**data)


def random_engine_case(rng: np.random.Generator) -> EngineCase:
    """Draw a randomized engine case (same envelope as the property tests)."""
    num_ports = int(rng.integers(1, 5))
    queues_per_port = int(rng.integers(1, 4))
    alphas = [round(float(rng.uniform(0.2, 2.0)), 3) for _ in range(queues_per_port)]
    return EngineCase(
        num_ports=num_ports,
        queues_per_port=queues_per_port,
        buffer_capacity=int(rng.integers(10, 120)),
        alphas=alphas,
        scheduler=_SCHEDULERS[int(rng.integers(2))],
        steps_per_bin=int(rng.integers(1, 20)),
        num_bins=int(rng.integers(10, 60)),
        traffic=_random_traffic_spec(rng, num_ports),
    )


def shrink_engine_case(case: EngineCase):
    """Candidate smaller cases, most aggressive first.

    Order matters for shrink quality: bisect the time horizon before
    touching structure, drop ports/queues before thinning traffic.
    """
    if case.num_bins > 1:
        yield replace(case, num_bins=case.num_bins // 2)
        yield replace(case, num_bins=case.num_bins - 1)
    if case.steps_per_bin > 1:
        yield replace(case, steps_per_bin=max(1, case.steps_per_bin // 2))
    if case.num_ports > 1:
        yield replace(case, num_ports=case.num_ports - 1)
    if case.queues_per_port > 1:
        yield replace(
            case,
            queues_per_port=case.queues_per_port - 1,
            alphas=case.alphas[: case.queues_per_port - 1],
        )
    if case.buffer_capacity > 2:
        yield replace(case, buffer_capacity=max(2, case.buffer_capacity // 2))
    yield from (
        replace(case, traffic=spec) for spec in _shrink_traffic_spec(case.traffic)
    )


def _shrink_traffic_spec(spec: dict):
    kind = spec["kind"]
    if kind == "composite" and len(spec["children"]) > 1:
        for drop in range(len(spec["children"])):
            children = [c for i, c in enumerate(spec["children"]) if i != drop]
            yield children[0] if len(children) == 1 else {
                "kind": "composite",
                "children": children,
            }
    if kind == "poisson":
        if spec["num_sources"] > 1:
            yield {**spec, "num_sources": spec["num_sources"] // 2 or 1}
        if spec["flows_per_step"] > 0.02:
            yield {**spec, "flows_per_step": round(spec["flows_per_step"] / 2, 4)}
    if kind == "incast":
        if spec["burst_size"] > 1:
            yield {**spec, "burst_size": spec["burst_size"] // 2 or 1}
        if spec["fan_in"] > 1:
            yield {**spec, "fan_in": spec["fan_in"] // 2 or 1}
        if spec["jitter"] > 0:
            yield {**spec, "jitter": 0}
    if kind == "scripted" and len(spec["script"]) > 1:
        steps = sorted(spec["script"], key=int)
        half = {s: spec["script"][s] for s in steps[: len(steps) // 2]}
        yield {**spec, "script": half}


# ----------------------------------------------------------------------
# CEM differential cases
# ----------------------------------------------------------------------
@dataclass
class CemCase:
    """A tiny scenario + perturbed imputation for the CEM harness.

    Kept deliberately small (the MILP reference carries one binary per
    port × bin); the combinatorial CEM itself scales far beyond this.
    """

    num_ports: int
    queues_per_port: int
    buffer_capacity: int
    alphas: list[float]
    flows_per_step: float
    flow_size: int
    traffic_seed: int
    steps_per_bin: int
    interval: int
    window_intervals: int
    sample_index: int
    noise_seed: int
    noise_scale: float
    input_kind: str = "noisy"  # "noisy" | "zeros" | "random"

    def switch_config(self) -> SwitchConfig:
        return SwitchConfig(
            num_ports=self.num_ports,
            queues_per_port=self.queues_per_port,
            buffer_capacity=self.buffer_capacity,
            alphas=tuple(self.alphas[: self.queues_per_port]),
        )

    def build(self):
        """Simulate and window; returns (sample, imputed) for the harness."""
        from repro.switchsim.simulation import Simulation
        from repro.telemetry.dataset import build_dataset
        from repro.traffic.distributions import FixedSizes
        from repro.traffic.generators import PoissonFlowTraffic

        config = self.switch_config()
        traffic = PoissonFlowTraffic(
            num_sources=3,
            num_ports=self.num_ports,
            flows_per_step=self.flows_per_step,
            sizes=FixedSizes(self.flow_size),
            class_weights=(1.0,) * self.queues_per_port,
            seed=self.traffic_seed,
        )
        bins = 2 * self.window_intervals * self.interval
        trace = Simulation(config, traffic, steps_per_bin=self.steps_per_bin).run(bins)
        dataset = build_dataset(
            trace,
            interval=self.interval,
            window_intervals=self.window_intervals,
            stride_intervals=self.window_intervals,
        )
        sample = dataset.samples[self.sample_index % len(dataset.samples)]
        rng = np.random.default_rng(self.noise_seed)
        if self.input_kind == "zeros":
            imputed = np.zeros_like(sample.target_raw)
        elif self.input_kind == "random":
            imputed = rng.random(sample.target_raw.shape) * max(
                float(sample.m_max.max()), 1.0
            )
        else:
            imputed = np.clip(
                sample.target_raw
                + rng.normal(0.0, self.noise_scale, sample.target_raw.shape),
                0.0,
                None,
            )
        return sample, imputed

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CemCase":
        return cls(**data)


def random_cem_case(rng: np.random.Generator) -> CemCase:
    queues_per_port = int(rng.integers(1, 3))
    return CemCase(
        num_ports=int(rng.integers(1, 3)),
        queues_per_port=queues_per_port,
        buffer_capacity=int(rng.integers(15, 50)),
        alphas=[round(float(rng.uniform(0.4, 1.5)), 3) for _ in range(queues_per_port)],
        flows_per_step=round(float(rng.uniform(0.05, 0.3)), 4),
        flow_size=int(rng.integers(2, 6)),
        traffic_seed=int(rng.integers(2**31)),
        steps_per_bin=int(rng.integers(2, 6)),
        interval=int(rng.integers(3, 6)),
        window_intervals=2,
        sample_index=int(rng.integers(4)),
        noise_seed=int(rng.integers(2**31)),
        noise_scale=round(float(rng.uniform(0.5, 4.0)), 3),
        input_kind=("noisy", "noisy", "zeros", "random")[int(rng.integers(4))],
    )


def shrink_cem_case(case: CemCase):
    if case.interval > 2:
        yield replace(case, interval=case.interval - 1)
    if case.num_ports > 1:
        yield replace(case, num_ports=case.num_ports - 1)
    if case.queues_per_port > 1:
        yield replace(
            case,
            queues_per_port=case.queues_per_port - 1,
            alphas=case.alphas[: case.queues_per_port - 1],
        )
    if case.noise_scale > 0.5:
        yield replace(case, noise_scale=round(case.noise_scale / 2, 3))
    if case.steps_per_bin > 1:
        yield replace(case, steps_per_bin=case.steps_per_bin - 1)


# ----------------------------------------------------------------------
# LP / simplex differential cases
# ----------------------------------------------------------------------
@dataclass
class LpCase:
    """A small all-integer MILP, checkable by exhaustive enumeration."""

    domains: list[int]  # variable i ranges over 0..domains[i]
    constraints: list[dict]  # {"coeffs": [...], "sense": "<="|">="|"==", "rhs": r}
    objective: list[int]

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LpCase":
        return cls(**data)


def random_lp_case(rng: np.random.Generator) -> LpCase:
    num_vars = int(rng.integers(2, 4))
    domains = [int(rng.integers(1, 4)) for _ in range(num_vars)]
    constraints = []
    for _ in range(int(rng.integers(1, 4))):
        constraints.append(
            {
                "coeffs": [int(rng.integers(-2, 3)) for _ in range(num_vars)],
                "sense": ("<=", ">=", "==")[int(rng.integers(3))],
                "rhs": int(rng.integers(-3, 6)),
            }
        )
    return LpCase(
        domains=domains,
        constraints=constraints,
        objective=[int(rng.integers(-3, 4)) for _ in range(num_vars)],
    )


def shrink_lp_case(case: LpCase):
    if len(case.constraints) > 1:
        for drop in range(len(case.constraints)):
            yield replace(
                case,
                constraints=[c for i, c in enumerate(case.constraints) if i != drop],
            )
    if len(case.domains) > 1:
        for drop in range(len(case.domains)):
            yield LpCase(
                domains=[d for i, d in enumerate(case.domains) if i != drop],
                constraints=[
                    {**c, "coeffs": [x for i, x in enumerate(c["coeffs"]) if i != drop]}
                    for c in case.constraints
                ],
                objective=[x for i, x in enumerate(case.objective) if i != drop],
            )
    for i, d in enumerate(case.domains):
        if d > 1:
            yield replace(
                case, domains=[d - 1 if j == i else x for j, x in enumerate(case.domains)]
            )


#: shrink function per case type, used by the fuzz driver.
SHRINKERS = {
    EngineCase: shrink_engine_case,
    CemCase: shrink_cem_case,
    LpCase: shrink_lp_case,
}
