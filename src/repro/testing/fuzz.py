"""Command-line differential fuzz runner (the nightly CI entry point).

Usage::

    # the nightly sweep: corpus replay + 240 random cases
    PYTHONPATH=src python -m repro.testing.fuzz \
        --corpus tests/corpus/fuzz_corpus.json \
        --engine-cases 120 --cem-cases 60 --lp-cases 60 --seed 0

    # replay one minimized counterexample printed by a failing run
    PYTHONPATH=src python -m repro.testing.fuzz \
        --replay engine '{"num_ports": 1, ...}'

Exit code 0 when every case agrees, 1 on any discrepancy.  Discrepancies
are printed with their minimized repro JSON and, with ``--out``, written
to a JSON report for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.testing.differential import (
    HARNESSES,
    FuzzReport,
    replay_corpus,
    run_fuzz,
)
from repro.testing.strategies import CemCase, EngineCase, LpCase

_CASE_TYPES = {
    "engine": EngineCase,
    "cem": CemCase,
    "cem_vectorized": CemCase,
    "lp": LpCase,
    "cem_misleading": CemCase,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="differential fuzzing of engine/CEM/simplex vs references",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine-cases", type=int, default=40)
    parser.add_argument("--cem-cases", type=int, default=20)
    parser.add_argument("--lp-cases", type=int, default=40)
    parser.add_argument(
        "--cem-vectorized-cases",
        type=int,
        default=20,
        help="bit-exactness cases for the vectorized CEM vs the reference loop",
    )
    parser.add_argument(
        "--cem-misleading-cases",
        type=int,
        default=20,
        help="CEM on deliberately wrong inputs: zero post-CEM residual "
        "required; reports max EMD vs the truth",
    )
    parser.add_argument(
        "--corpus", type=Path, help="replay this corpus file before the random sweep"
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="report raw failing cases without shrinking",
    )
    parser.add_argument(
        "--out", type=Path, help="write a JSON report of the run (CI artifact)"
    )
    parser.add_argument(
        "--replay",
        nargs=2,
        metavar=("HARNESS", "CASE_JSON"),
        help="replay one serialized case through the named harness and exit",
    )
    return parser


def _report_payload(report: FuzzReport, seconds: float) -> dict:
    return {
        "cases_run": report.cases_run,
        "seconds": round(seconds, 2),
        "stats": report.stats,
        "discrepancies": [
            {
                "harness": d.harness,
                "detail": d.detail,
                "case": d.case,
                "original_case": d.original_case,
            }
            for d in report.discrepancies
        ],
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.replay:
        harness, case_json = args.replay
        if harness not in HARNESSES:
            print(f"unknown harness {harness!r}; choose from {sorted(HARNESSES)}")
            return 2
        case = _CASE_TYPES[harness].from_dict(json.loads(case_json))
        detail = HARNESSES[harness][0](case)
        if detail is None:
            print(f"[{harness}] case agrees with the reference")
            return 0
        print(f"[{harness}] DISCREPANCY: {detail}")
        return 1

    start = time.perf_counter()
    combined = FuzzReport()

    if args.corpus:
        corpus_report = replay_corpus(args.corpus)
        for harness, count in corpus_report.cases_run.items():
            combined.cases_run[harness] = combined.cases_run.get(harness, 0) + count
        combined.discrepancies.extend(corpus_report.discrepancies)
        print(f"corpus: {corpus_report.summary()}")

    sweep = run_fuzz(
        seed=args.seed,
        engine_cases=args.engine_cases,
        cem_cases=args.cem_cases,
        lp_cases=args.lp_cases,
        cem_vectorized_cases=args.cem_vectorized_cases,
        cem_misleading_cases=args.cem_misleading_cases,
        minimize=not args.no_minimize,
        log=print,
    )
    for harness, count in sweep.cases_run.items():
        combined.cases_run[harness] = combined.cases_run.get(harness, 0) + count
    combined.discrepancies.extend(sweep.discrepancies)
    combined.stats.update(sweep.stats)

    seconds = time.perf_counter() - start
    print(f"{combined.summary()} in {seconds:.1f}s")
    misleading = combined.stats.get("cem_misleading")
    if misleading:
        print(
            "cem_misleading: "
            f"{misleading['enforced']} enforced at zero residual "
            f"({misleading['infeasible']} infeasible) — "
            f"max EMD {misleading['max_emd']:.4f}, "
            f"mean EMD {misleading['mean_emd']:.4f} vs the true series"
        )
    for discrepancy in combined.discrepancies:
        print(discrepancy.render())

    if args.out:
        args.out.write_text(
            json.dumps(_report_payload(combined, seconds), indent=2, sort_keys=True)
            + "\n"
        )
    return 0 if combined.ok else 1


if __name__ == "__main__":
    sys.exit(main())
