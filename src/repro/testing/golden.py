"""Content fingerprints of simulation traces for golden regression tests.

PR 1 changed ``build_traffic``'s RNG stream layout (``TRAFFIC_REV`` 1→2)
and every per-seed dataset silently changed with it.  The golden tests pin
the current streams: a few tiny scenarios are simulated and their traces
hashed; any future refactor that alters the generated data — intentionally
or not — fails the comparison and must bump ``TRAFFIC_REV`` (and the
recorded hashes) explicitly.

Fingerprints cover every trace array with its shape and dtype.  All trace
fields are int64 counters, so the bytes are exact and the hash is stable
across platforms and numpy versions.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.switchsim.simulation import SimulationTrace

_FIELDS = (
    "qlen",
    "qlen_max",
    "received",
    "sent",
    "dropped",
    "delay_sum",
    "buffer_occupancy",
)


def trace_fingerprint(trace: SimulationTrace) -> str:
    """SHA-256 over the trace's arrays, shapes, dtypes, and bin width."""
    digest = hashlib.sha256()
    digest.update(f"steps_per_bin={trace.steps_per_bin}".encode())
    for name in _FIELDS:
        array = np.ascontiguousarray(getattr(trace, name))
        digest.update(name.encode())
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()
