"""Scalability study: FM-only imputation vs the CEM (§2.3 and §4).

The paper's qualitative result: Z3 on the full per-time-step model solves
toy scenarios in minutes but cannot handle realistic horizons (24 h+),
while the CEM corrects a 50 ms window in ~1.47 s.  This module reproduces
the *shape*: FM solve time (and explored nodes) grows explosively with the
horizon while CEM time stays flat in window count — the crossover is the
paper's argument for ML+FM over FM alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.fm.cem_milp import MilpCem
from repro.fm.model import FMImputer, scenario_from_trace
from repro.imputation.cem import ConstraintEnforcer
from repro.switchsim.simulation import Simulation
from repro.switchsim.switch import SwitchConfig
from repro.telemetry.dataset import TelemetryDataset
from repro.traffic.generators import PoissonFlowTraffic
from repro.traffic.distributions import FixedSizes
from repro.utils.rng import RngLike, as_generator


@dataclass(frozen=True)
class ScalabilityConfig:
    """Declarative form of the FM-alone scaling study (``fm_scaling``).

    The registered ``scalability`` experiment runs exactly this; the
    legacy CLI flags (``--horizons``, ``--node-limit``, ``--deadline``)
    are conveniences that set the matching fields.  ``deadline`` is the
    per-solve wall-clock budget in seconds (``None`` = unbounded; TOML
    files express "unbounded" by omitting the key).
    """

    horizons: tuple[int, ...] = (8, 16, 32)
    steps_per_interval: int = 4
    node_limit: int = 2_000
    lp_backend: str = "scipy"
    seed: int = 0
    deadline: float | None = None


def run_scaling(config: ScalabilityConfig) -> "list[FmScalingPoint]":
    """:func:`fm_scaling` driven by a :class:`ScalabilityConfig`."""
    return fm_scaling(
        list(config.horizons),
        steps_per_interval=config.steps_per_interval,
        node_limit=config.node_limit,
        lp_backend=config.lp_backend,
        seed=config.seed,
        deadline=config.deadline,
    )


@dataclass
class FmScalingPoint:
    """One (horizon → solve effort) measurement."""

    horizon: int
    status: str
    solve_seconds: float
    nodes_explored: int
    hit_node_limit: bool
    timed_out: bool = False


def _fm_trace(horizon: int, seed: RngLike):
    """A small 1-port/2-queue trace at packet-time-step granularity.

    Uses drop-at-full-buffer (huge DT alphas) to match the FM model's
    buffer semantics, so the scenario is guaranteed satisfiable.
    """
    config = SwitchConfig(
        num_ports=1,
        queues_per_port=2,
        buffer_capacity=8,
        alphas=(1e6, 1e6),
    )
    traffic = PoissonFlowTraffic(
        num_sources=3,
        num_ports=1,
        flows_per_step=0.3,
        sizes=FixedSizes(2),
        class_weights=(0.5, 0.5),
        seed=seed,
    )
    simulation = Simulation(config, traffic, steps_per_bin=1)
    return simulation.run(horizon)


def fm_scaling(
    horizons: list[int],
    steps_per_interval: int = 4,
    node_limit: int = 2_000,
    lp_backend: str = "scipy",
    seed: RngLike = 0,
    deadline: float | None = None,
) -> list[FmScalingPoint]:
    """Solve the full FM model at growing horizons; returns one point each.

    Horizons must be multiples of ``steps_per_interval``.  Each horizon
    gets an independent traffic seed derived from ``seed`` so the curve is
    reproducible point by point.  ``node_limit`` bounds the search budget:
    hitting it is a *result* (the paper's "did not terminate"), not an
    error.  The default LP backend is scipy for speed; pass ``"native"``
    to run entirely on the from-scratch simplex (same search tree, slower
    per node).
    """
    base = as_generator(seed)
    seeds = [int(base.integers(0, 2**63)) for _ in horizons]
    points: list[FmScalingPoint] = []
    with obs.span("scalability.fm_scaling", horizons=list(map(int, horizons))):
        for horizon, horizon_seed in zip(horizons, seeds):
            if horizon % steps_per_interval:
                raise ValueError(
                    f"horizon {horizon} not a multiple of interval {steps_per_interval}"
                )
            with obs.span("scalability.horizon", horizon=int(horizon)) as span:
                trace = _fm_trace(horizon, horizon_seed)
                scenario = scenario_from_trace(
                    trace,
                    steps_per_interval=steps_per_interval,
                    num_intervals=horizon // steps_per_interval,
                    fan_in=3,
                )
                imputer = FMImputer(
                    lp_backend=lp_backend, node_limit=node_limit, deadline=deadline
                )
                result = imputer.impute(scenario)
                span.annotate(status=result.status, nodes=result.nodes_explored)
                obs.series("scalability.nodes_explored").append(result.nodes_explored)
            points.append(
                FmScalingPoint(
                    horizon=horizon,
                    status=result.status,
                    solve_seconds=result.solve_time,
                    nodes_explored=result.nodes_explored,
                    hit_node_limit=result.hit_node_limit,
                    timed_out=result.timed_out,
                )
            )
    return points


@dataclass
class CemTiming:
    """Average per-window CEM correction time (fast and solver-based)."""

    greedy_seconds: float
    milp_seconds: float
    milp_solved: int
    num_windows: int


def cem_timing(
    dataset: TelemetryDataset,
    imputed_windows: list[np.ndarray],
    max_milp_windows: int = 3,
    milp_intervals: int = 1,
    lp_backend: str = "scipy",
) -> CemTiming:
    """Time both CEM implementations on already-imputed windows.

    The MILP CEM (the paper's Z3-style formulation) is timed on at most
    ``max_milp_windows`` windows, each cropped to ``milp_intervals``
    coarse intervals — one 50 ms interval matches the paper's "correct a
    50 ms transformer output" measurement (1.47 s with Z3), and keeps the
    branch-and-bound tractable on this repo's much weaker solver.
    """
    if len(imputed_windows) != len(dataset):
        raise ValueError("need one imputed window per dataset sample")
    enforcer = ConstraintEnforcer(dataset.switch_config)
    start = time.perf_counter()
    for sample, window in zip(dataset.samples, imputed_windows):
        enforcer.enforce(window, sample)
    greedy_seconds = (time.perf_counter() - start) / max(len(dataset), 1)

    from repro.telemetry.dataset import crop_sample

    milp = MilpCem(dataset.switch_config, lp_backend=lp_backend)
    milp_total = 0.0
    solved = 0
    for sample, window in list(zip(dataset.samples, imputed_windows))[:max_milp_windows]:
        cropped = crop_sample(sample, milp_intervals)
        result = milp.enforce(window[:, : cropped.num_bins], cropped)
        milp_total += result.solve_time
        if result.status == "sat":
            solved += 1
    milp_count = min(max_milp_windows, len(dataset))
    return CemTiming(
        greedy_seconds=greedy_seconds,
        milp_seconds=milp_total / max(milp_count, 1),
        milp_solved=solved,
        num_windows=len(dataset),
    )
