"""The paper's evaluation scenario (§4) and dataset generation.

The paper drives ns-3 with the ABM scenario: websearch background traffic
plus incast bursts, two queues per port with different classes, shared
buffer, 1 ms ground truth sampled at 50 ms.  ``paper_scenario`` mirrors
that setup at this repo's simulator scale; ``quick_scenario`` is a smaller
variant for tests and smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.switchsim.simulation import Simulation, SimulationTrace
from repro.switchsim.switch import SwitchConfig
from repro.telemetry.dataset import TelemetryDataset, build_dataset
from repro.traffic.distributions import WebsearchSizes
from repro.traffic.generators import CompositeTraffic, IncastTraffic, PoissonFlowTraffic
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to simulate the evaluation workload."""

    num_ports: int = 4
    queues_per_port: int = 2
    buffer_capacity: int = 150
    alphas: tuple[float, ...] = (1.0, 0.5)
    steps_per_bin: int = 16
    interval: int = 50  # fine bins per coarse interval (50 ms in the paper)
    window_intervals: int = 6  # 300-bin imputation windows (Fig. 3)
    stride_intervals: int = 2  # overlapping windows for more training data
    duration_bins: int = 12000  # simulated fine bins (12 s at 1 ms)
    websearch_load: float = 0.35  # fraction of aggregate port capacity
    websearch_sources: int = 16
    incast_fan_in: int = 8
    incast_burst: int = 40
    incast_period: int = 800  # fine bins between incast epochs (per victim)
    incast_jitter: int = 200
    incast_dsts: tuple[int, ...] = (1, 3)  # victim ports, phase-shifted

    def switch_config(self) -> SwitchConfig:
        return SwitchConfig(
            num_ports=self.num_ports,
            queues_per_port=self.queues_per_port,
            buffer_capacity=self.buffer_capacity,
            alphas=self.alphas,
        )


def paper_scenario() -> ScenarioConfig:
    """The default (paper-like) scenario."""
    return ScenarioConfig()


def quick_scenario() -> ScenarioConfig:
    """A small scenario that simulates and trains in seconds (tests/CI)."""
    return ScenarioConfig(
        num_ports=2,
        buffer_capacity=80,
        steps_per_bin=8,
        duration_bins=2400,
        interval=50,
        window_intervals=6,
        stride_intervals=3,
        websearch_sources=8,
        incast_fan_in=6,
        incast_burst=25,
        incast_period=400,
        incast_jitter=100,
        incast_dsts=(1,),
    )


def build_traffic(config: ScenarioConfig, seed: RngLike = 0) -> CompositeTraffic:
    """Websearch background + periodic incast, as in §4."""
    rng = as_generator(seed)
    sizes = WebsearchSizes()
    mean_flow = sizes.mean()
    # Offered load (packets/step) = flows_per_step * mean_flow_size; the
    # switch drains num_ports packets/step, so:
    flows_per_step = config.websearch_load * config.num_ports / mean_flow
    background = PoissonFlowTraffic(
        num_sources=config.websearch_sources,
        num_ports=config.num_ports,
        flows_per_step=flows_per_step,
        sizes=sizes,
        seed=rng,
    )
    incasts = []
    period_steps = config.incast_period * config.steps_per_bin
    for i, dst in enumerate(config.incast_dsts):
        incasts.append(
            IncastTraffic(
                fan_in=config.incast_fan_in,
                burst_size=config.incast_burst,
                period=period_steps,
                dst_port=dst % config.num_ports,
                qclass=min(1, config.queues_per_port - 1),
                jitter=config.incast_jitter * config.steps_per_bin,
                seed=rng,
                # Phase-shift the victims so their bursts interleave.
                start_step=(i * period_steps) // max(len(config.incast_dsts), 1),
            )
        )
    return CompositeTraffic([background, *incasts])


def generate_trace(config: ScenarioConfig, seed: RngLike = 0) -> SimulationTrace:
    """Simulate the scenario and return the fine-grained ground truth."""
    check_positive("duration_bins", config.duration_bins)
    simulation = Simulation(
        config.switch_config(),
        build_traffic(config, seed=seed),
        steps_per_bin=config.steps_per_bin,
    )
    return simulation.run(config.duration_bins)


def generate_dataset(
    config: ScenarioConfig | None = None, seed: RngLike = 0
) -> tuple[TelemetryDataset, TelemetryDataset, TelemetryDataset]:
    """Simulate, window, and split into (train, val, test) datasets."""
    config = config if config is not None else paper_scenario()
    trace = generate_trace(config, seed=seed)
    dataset = build_dataset(
        trace,
        interval=config.interval,
        window_intervals=config.window_intervals,
        stride_intervals=config.stride_intervals,
    )
    return dataset.split(train_fraction=0.7, val_fraction=0.15, seed=seed)
