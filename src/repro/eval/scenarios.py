"""The paper's evaluation scenario (§4) and dataset generation.

The paper drives ns-3 with the ABM scenario: websearch background traffic
plus incast bursts, two queues per port with different classes, shared
buffer, 1 ms ground truth sampled at 50 ms.  ``paper_scenario`` mirrors
that setup at this repo's simulator scale; ``quick_scenario`` is a smaller
variant for tests and smoke runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Union

import numpy as np

import repro.obs as obs
from repro.switchsim.cache import TraceCache
from repro.switchsim.simulation import Simulation, SimulationTrace
from repro.switchsim.switch import SwitchConfig
from repro.telemetry.dataset import TelemetryDataset, build_dataset
from repro.traffic.distributions import WebsearchSizes
from repro.traffic.generators import CompositeTraffic, IncastTraffic, PoissonFlowTraffic
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_positive

#: Revision of build_traffic()'s RNG stream layout; part of the cache key
#: so behavioural changes to traffic construction invalidate old traces.
TRAFFIC_REV = 2

CacheLike = Union[TraceCache, str, Path, None]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to simulate the evaluation workload."""

    num_ports: int = 4
    queues_per_port: int = 2
    buffer_capacity: int = 150
    alphas: tuple[float, ...] = (1.0, 0.5)
    steps_per_bin: int = 16
    interval: int = 50  # fine bins per coarse interval (50 ms in the paper)
    window_intervals: int = 6  # 300-bin imputation windows (Fig. 3)
    stride_intervals: int = 2  # overlapping windows for more training data
    duration_bins: int = 12000  # simulated fine bins (12 s at 1 ms)
    websearch_load: float = 0.35  # fraction of aggregate port capacity
    websearch_sources: int = 16
    incast_fan_in: int = 8
    incast_burst: int = 40
    incast_period: int = 800  # fine bins between incast epochs (per victim)
    incast_jitter: int = 200
    incast_dsts: tuple[int, ...] = (1, 3)  # victim ports, phase-shifted

    def switch_config(self) -> SwitchConfig:
        return SwitchConfig(
            num_ports=self.num_ports,
            queues_per_port=self.queues_per_port,
            buffer_capacity=self.buffer_capacity,
            alphas=self.alphas,
        )


def paper_scenario() -> ScenarioConfig:
    """The default (paper-like) scenario."""
    return ScenarioConfig()


def quick_scenario() -> ScenarioConfig:
    """A small scenario that simulates and trains in seconds (tests/CI)."""
    return ScenarioConfig(
        num_ports=2,
        buffer_capacity=80,
        steps_per_bin=8,
        duration_bins=2400,
        interval=50,
        window_intervals=6,
        stride_intervals=3,
        websearch_sources=8,
        incast_fan_in=6,
        incast_burst=25,
        incast_period=400,
        incast_jitter=100,
        incast_dsts=(1,),
    )


def build_traffic(config: ScenarioConfig, seed: RngLike = 0) -> CompositeTraffic:
    """Websearch background + periodic incast, as in §4.

    Each component generator gets its own deterministic child RNG (spawned
    from ``seed``): independent streams keep the components statistically
    uncoupled and let the composite batch arrivals for the array engine —
    a shared stream would force per-step interleaving of the draws.
    """
    child_rngs = spawn_generators(seed, 1 + len(config.incast_dsts))
    sizes = WebsearchSizes()
    mean_flow = sizes.mean()
    # Offered load (packets/step) = flows_per_step * mean_flow_size; the
    # switch drains num_ports packets/step, so:
    flows_per_step = config.websearch_load * config.num_ports / mean_flow
    background = PoissonFlowTraffic(
        num_sources=config.websearch_sources,
        num_ports=config.num_ports,
        flows_per_step=flows_per_step,
        sizes=sizes,
        seed=child_rngs[0],
    )
    incasts = []
    period_steps = config.incast_period * config.steps_per_bin
    for i, dst in enumerate(config.incast_dsts):
        incasts.append(
            IncastTraffic(
                fan_in=config.incast_fan_in,
                burst_size=config.incast_burst,
                period=period_steps,
                dst_port=dst % config.num_ports,
                qclass=min(1, config.queues_per_port - 1),
                jitter=config.incast_jitter * config.steps_per_bin,
                seed=child_rngs[1 + i],
                # Phase-shift the victims so their bursts interleave.
                start_step=(i * period_steps) // max(len(config.incast_dsts), 1),
            )
        )
    return CompositeTraffic([background, *incasts])


def trace_cache_params(config: ScenarioConfig, seed: int) -> dict[str, Any]:
    """The parameter mapping that content-addresses a scenario trace.

    Everything that determines the trace bit-for-bit: the scenario
    dataclass (switch config, traffic parameters, duration), the seed,
    and the traffic-construction revision.  The engine is deliberately
    absent — both engines produce identical traces.
    """
    return {
        "kind": "scenario_trace",
        "traffic_rev": TRAFFIC_REV,
        "scenario": asdict(config),
        "seed": int(seed),
    }


def _coerce_cache(cache: CacheLike) -> TraceCache | None:
    if cache is None or isinstance(cache, TraceCache):
        return cache
    return TraceCache(cache)


def generate_trace(
    config: ScenarioConfig,
    seed: RngLike = 0,
    cache: CacheLike = None,
    engine: str = "auto",
    selfcheck: bool = False,
) -> SimulationTrace:
    """Simulate the scenario and return the fine-grained ground truth.

    With ``cache`` (a :class:`TraceCache`, or a directory path), the
    trace is looked up by content hash first and stored after a miss; a
    cached re-run of an unchanged scenario performs zero simulation
    steps.  Caching requires an integer ``seed`` (a generator object's
    stream position is not hashable state); generator seeds bypass it.

    With ``selfcheck=True`` the invariant oracles run on the trace —
    including cache hits, so a corrupted cache entry is caught too.  On
    violation the raised :class:`~repro.testing.selfcheck.SelfCheckError`
    embeds the scenario parameters and seed as a serialized repro.
    """
    check_positive("duration_bins", config.duration_bins)
    cache = _coerce_cache(cache)
    cacheable = isinstance(seed, (int, np.integer))
    params = trace_cache_params(config, int(seed)) if cacheable else None

    def checked(trace: SimulationTrace, source: str) -> SimulationTrace:
        if selfcheck:
            from repro.testing.selfcheck import selfcheck_trace

            repro = params if params is not None else {
                "kind": "scenario_trace",
                "scenario": asdict(config),
                "seed": repr(seed),
            }
            selfcheck_trace(trace, repro={**repro, "source": source})
        return trace

    with obs.span(
        "scenarios.generate_trace", bins=config.duration_bins
    ) as span:
        if cache is not None and cacheable:
            cached = cache.get(params)
            if cached is not None:
                span.annotate(source="cache")
                return checked(cached, "cache")
        simulation = Simulation(
            config.switch_config(),
            build_traffic(config, seed=seed),
            steps_per_bin=config.steps_per_bin,
            engine=engine,
        )
        trace = checked(simulation.run(config.duration_bins), "simulation")
        span.annotate(source="simulation")
        if cache is not None and cacheable:
            cache.put(params, trace)
        return trace


def dataset_from_trace(
    config: ScenarioConfig, trace: SimulationTrace, seed: RngLike = 0
) -> tuple[TelemetryDataset, TelemetryDataset, TelemetryDataset]:
    """Window a trace and split it into (train, val, test) datasets."""
    dataset = build_dataset(
        trace,
        interval=config.interval,
        window_intervals=config.window_intervals,
        stride_intervals=config.stride_intervals,
    )
    return dataset.split(train_fraction=0.7, val_fraction=0.15, seed=seed)


def generate_dataset(
    config: ScenarioConfig | None = None,
    seed: RngLike = 0,
    cache: CacheLike = None,
    engine: str = "auto",
    selfcheck: bool = False,
) -> tuple[TelemetryDataset, TelemetryDataset, TelemetryDataset]:
    """Simulate, window, and split into (train, val, test) datasets."""
    config = config if config is not None else paper_scenario()
    trace = generate_trace(
        config, seed=seed, cache=cache, engine=engine, selfcheck=selfcheck
    )
    return dataset_from_trace(config, trace, seed=seed)
