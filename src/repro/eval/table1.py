"""Regenerates Table 1: consistency and downstream errors for 4 methods.

Rows (all normalised errors, lower is better):

    a. Max Constraint            d. Burst Detection       g. Burst Interarrival
    b. Periodic Constraint       e. Burst Height          h. Empty Queue Freq.
    c. Sent pkts count           f. Burst Frequency       i. Concurrent bursts

Columns: IterImputer | Transformer | Transformer+KAL | Transformer+KAL+CEM.

Expected shape versus the paper: KAL shrinks the consistency errors
(sometimes overshooting row a), CEM nullifies rows a–c exactly, and the
downstream rows improve monotonically from IterImputer through the full
method, with CEM occasionally a wash on burst frequency (row f) — the
consistency/pattern trade-off §4 discusses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

import numpy as np

import repro.obs as obs
from repro.config import config_digest
from repro.constraints.spec import check_constraints
from repro.downstream.metrics import DownstreamReport, evaluate_downstream
from repro.eval.report import format_table
from repro.eval.scenarios import ScenarioConfig, generate_dataset, paper_scenario
from repro.imputation.cem import ConstraintEnforcer
from repro.imputation.iterative import IterativeImputer
from repro.imputation.trainer import Trainer, TrainerConfig
from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer
from repro.resilience.journal import ResultJournal
from repro.telemetry.dataset import TelemetryDataset

ROW_LABELS = {
    "max": "a. Max Constraint",
    "periodic": "b. Periodic Constraint",
    "sent": "c. Sent pkts count Constraint",
    "burst_detection": "d. Burst Detection",
    "burst_height": "e. Burst Height",
    "burst_frequency": "f. Burst Frequency",
    "burst_interarrival": "g. Burst Interarrival Time",
    "empty_queue": "h. Empty Queue Frequency",
    "concurrent_bursts": "i. Avg count of concurrent bursts",
}

METHODS = ("IterImputer", "Transformer", "Transformer+KAL", "Transformer+KAL+CEM")


@dataclass
class Table1Config:
    """Knobs for the Table-1 run; defaults match the paper-like scenario."""

    scenario: ScenarioConfig = field(default_factory=paper_scenario)
    epochs: int = 30
    batch_size: int = 8
    learning_rate: float = 1e-3
    d_model: int = 32
    num_layers: int = 2
    d_ff: int = 64
    num_heads: int = 4
    mu: float = 0.5
    burst_threshold: float = 5.0
    seed: int = 0
    dtype: str = "float32"  # training precision (see TrainerConfig.dtype)
    workers: int = 1  # gradient worker processes; numbers are unaffected
    # (shard count is pinned via TrainerConfig.grad_shards semantics)
    fused_kernels: bool = True  # fused attention/softmax/layer-norm path
    cem_vectorized: bool = True  # vectorized CEM projection passes; False
    # runs the per-interval reference loop (same outputs, bit for bit)
    batch_inference: bool = True  # impute test windows in batched forward
    # passes; False runs the pre-optimization per-sample path (identical
    # outputs — see TransformerImputer.impute_batch)


@dataclass
class Table1Result:
    """The regenerated table plus training metadata."""

    values: dict[str, dict[str, float]]  # row key -> method -> error
    train_seconds: dict[str, float]
    num_test_windows: int
    cem_seconds_per_window: float

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        headers = ["Error Metric", *METHODS]
        rows = []
        for key, label in ROW_LABELS.items():
            rows.append([label] + [f"{self.values[key][m]:.3f}" for m in METHODS])
        return format_table(headers, rows)

    def improvement_over_transformer(self) -> dict[str, float]:
        """% improvement of the full method over the plain transformer on
        the downstream rows (the paper reports 11–96%)."""
        out = {}
        for key in (
            "burst_detection",
            "burst_height",
            "burst_frequency",
            "burst_interarrival",
            "empty_queue",
            "concurrent_bursts",
        ):
            base = self.values[key]["Transformer"]
            full = self.values[key]["Transformer+KAL+CEM"]
            out[key] = 100.0 * (base - full) / base if base > 0 else 0.0
        return out


def _evaluate_method(
    impute_fn,
    test: TelemetryDataset,
    config: Table1Config,
    method: str = "",
    batch_impute_fn=None,
    batch_size: int = 16,
) -> tuple[dict[str, float], float]:
    """Mean consistency + downstream errors of a method over the test set.

    Returns the per-row errors and the mean per-window imputation time.
    ``method`` labels the span and, when metrics are on, the per-window
    C1/C2/C3 residual histograms (``table1.<method>.residual.c1`` ...).

    ``batch_impute_fn`` (samples -> list of arrays) amortises the
    per-forward overhead for methods that can impute many windows in one
    pass; each window's result is identical to the per-sample call (see
    :meth:`TransformerImputer.impute_batch`), so the table's values do
    not depend on which path ran.
    """
    consistency = {"max": [], "periodic": [], "sent": []}
    downstream: list[DownstreamReport] = []
    elapsed = 0.0
    with obs.span("table1.evaluate", method=method, windows=len(test.samples)):
        record_residuals = obs.metrics_enabled() and method
        batched: list[np.ndarray] = []
        if batch_impute_fn is not None:
            for start_index in range(0, len(test.samples), batch_size):
                chunk = test.samples[start_index : start_index + batch_size]
                start = time.perf_counter()
                batched.extend(batch_impute_fn(chunk))
                elapsed += time.perf_counter() - start
        for index, sample in enumerate(test.samples):
            if batch_impute_fn is not None:
                imputed = batched[index]
            else:
                start = time.perf_counter()
                imputed = impute_fn(sample)
                elapsed += time.perf_counter() - start
            report = check_constraints(imputed, sample, test.switch_config)
            consistency["max"].append(report.max_error)
            consistency["periodic"].append(report.periodic_error)
            consistency["sent"].append(report.sent_error)
            if record_residuals:
                obs.histogram(f"table1.{method}.residual.c1").observe(report.max_error)
                obs.histogram(f"table1.{method}.residual.c2").observe(
                    report.periodic_error
                )
                obs.histogram(f"table1.{method}.residual.c3").observe(report.sent_error)
            downstream.append(
                evaluate_downstream(imputed, sample.target_raw, config.burst_threshold)
            )
    averaged = DownstreamReport.average(downstream)
    values = {key: float(np.mean(v)) for key, v in consistency.items()}
    values.update(
        burst_detection=averaged.burst_detection,
        burst_height=averaged.burst_height,
        burst_frequency=averaged.burst_frequency,
        burst_interarrival=averaged.burst_interarrival,
        empty_queue=averaged.empty_queue,
        concurrent_bursts=averaged.concurrent_bursts,
    )
    return values, elapsed / max(len(test.samples), 1)


def journal_scope(config: Table1Config) -> str:
    """The journal key prefix identifying one exact Table-1 configuration.

    Everything that determines the table's numbers participates in the
    hash, so a journal can never leak results across configurations (a
    changed epoch count, scenario knob, or seed starts a fresh scope).
    The hash is :func:`repro.config.config_digest` — the same canonical
    digest that keys the trace cache and fingerprints checkpoints.
    """
    return "table1/" + config_digest(config)[:16]


def train_transformer(
    train: TelemetryDataset,
    val: TelemetryDataset,
    config: Table1Config,
    use_kal: bool,
    checkpoint: Union[str, Path, None] = None,
    resume: bool = False,
) -> tuple[TransformerImputer, float]:
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            d_ff=config.d_ff,
        ),
        train.scaler,
        seed=config.seed,
    )
    trainer = Trainer(
        model,
        train,
        TrainerConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            use_kal=use_kal,
            mu=config.mu,
            seed=config.seed,
            dtype=config.dtype,
            workers=config.workers,
            fused_kernels=config.fused_kernels,
        ),
        val=val,
    )
    start = time.perf_counter()
    with obs.span("table1.train", method="kal" if use_kal else "plain"):
        with obs.profile_stage(f"table1.train.{'kal' if use_kal else 'plain'}"):
            trainer.train(checkpoint_path=checkpoint, resume=resume)
    return model, time.perf_counter() - start


def run_table1(
    config: Table1Config | None = None,
    datasets: tuple[TelemetryDataset, TelemetryDataset, TelemetryDataset] | None = None,
    pretrained: tuple[TransformerImputer, TransformerImputer] | None = None,
    journal: Union[ResultJournal, str, Path, None] = None,
) -> Table1Result:
    """Run the full Table-1 experiment.

    ``datasets`` may be passed in to reuse a simulation, and ``pretrained``
    = (plain_model, kal_model) to reuse trained transformers (e.g. from a
    benchmark fixture); otherwise everything is built fresh.

    ``journal`` (a :class:`~repro.resilience.journal.ResultJournal` or a
    path to open one at) makes the run resumable: each method column is
    committed durably the moment its evaluation finishes, and a re-run
    with the same journal skips completed columns — including the
    training they would have required.  Because every column is a
    deterministic function of ``config`` — journaled payloads contain
    only config-determined values, never timings — an
    interrupted-then-resumed run produces a byte-identical table to an
    uninterrupted one, and two fresh runs of the same config write
    byte-identical journals.  ``None`` (the default) is the seed
    behaviour with zero overhead.
    """
    config = config if config is not None else Table1Config()
    import contextlib

    from repro.autodiff import fused as _fused
    from repro.autodiff.runtime import large_alloc_reuse

    with obs.span("table1.run", seed=config.seed, epochs=config.epochs):
        # Covers inference too: the evaluation columns run the same
        # kernel selection the models were trained under.
        with contextlib.ExitStack() as stack:
            stack.enter_context(_fused.fused_kernels(config.fused_kernels))
            if config.fused_kernels:
                stack.enter_context(large_alloc_reuse())
            return _run_table1(config, datasets, pretrained, journal)


def _run_table1(config, datasets, pretrained, journal) -> Table1Result:
    journal = ResultJournal.coerce(journal)
    scope = journal_scope(config) if journal is not None else None

    def recorded(method: str):
        return journal.get(f"{scope}/{method}") if journal is not None else None

    def commit(method: str, payload: dict) -> None:
        if journal is not None:
            journal.put(f"{scope}/{method}", payload)

    if datasets is None:
        with obs.span("table1.dataset"):
            with obs.profile_stage("table1.dataset"):
                datasets = generate_dataset(config.scenario, seed=config.seed)
    train, val, test = datasets
    if len(test) == 0:
        raise ValueError("test split is empty; increase duration_bins")

    values: dict[str, dict[str, float]] = {key: {} for key in ROW_LABELS}
    train_seconds: dict[str, float] = {}

    cell = recorded("IterImputer")
    if cell is None:
        iterative = IterativeImputer()
        iter_values, _ = _evaluate_method(iterative.impute, test, config, method="iter")
        commit("IterImputer", {"values": iter_values})
    else:
        iter_values = cell["values"]
    for key, value in iter_values.items():
        values[key]["IterImputer"] = value

    plain_cell = recorded("Transformer")
    kal_cell = recorded("Transformer+KAL")
    cem_cell = recorded("Transformer+KAL+CEM")

    plain_model = kal_model = None
    if pretrained is not None:
        plain_model, kal_model = pretrained
    else:
        # Train only the models still needed by un-journaled columns.
        if plain_cell is None:
            plain_model, seconds = train_transformer(train, val, config, use_kal=False)
            train_seconds["Transformer"] = seconds
        if kal_cell is None or cem_cell is None:
            kal_model, seconds = train_transformer(train, val, config, use_kal=True)
            train_seconds["Transformer+KAL"] = seconds

    if plain_cell is None:
        plain_values, _ = _evaluate_method(
            plain_model.impute,
            test,
            config,
            method="plain",
            batch_impute_fn=plain_model.impute_batch if config.batch_inference else None,
        )
        commit("Transformer", {"values": plain_values})
    else:
        plain_values = plain_cell["values"]
    for key, value in plain_values.items():
        values[key]["Transformer"] = value

    if kal_cell is None:
        kal_values, _ = _evaluate_method(
            kal_model.impute,
            test,
            config,
            method="kal",
            batch_impute_fn=kal_model.impute_batch if config.batch_inference else None,
        )
        commit("Transformer+KAL", {"values": kal_values})
    else:
        kal_values = kal_cell["values"]
    for key, value in kal_values.items():
        values[key]["Transformer+KAL"] = value

    if cem_cell is None:
        enforcer = ConstraintEnforcer(
            test.switch_config, vectorized=config.cem_vectorized
        )
        record_before = obs.metrics_enabled()

        def _finish(imputed, sample):
            if record_before:
                # Residuals going *into* CEM, paired with the post-CEM
                # table1.full.residual.* histograms recorded by
                # _evaluate_method — together they show what CEM repaired.
                report = check_constraints(imputed, sample, test.switch_config)
                obs.histogram("cem.residual_before.c1").observe(report.max_error)
                obs.histogram("cem.residual_before.c2").observe(report.periodic_error)
                obs.histogram("cem.residual_before.c3").observe(report.sent_error)
            return enforcer.enforce(imputed, sample)

        def full_method(sample):
            return _finish(kal_model.impute(sample), sample)

        def full_method_batch(chunk):
            return [
                _finish(imputed, sample)
                for imputed, sample in zip(kal_model.impute_batch(chunk), chunk)
            ]

        with obs.profile_stage("table1.cem"):
            full_values, cem_seconds = _evaluate_method(
                full_method,
                test,
                config,
                method="full",
                batch_impute_fn=full_method_batch if config.batch_inference else None,
            )
        commit("Transformer+KAL+CEM", {"values": full_values})
    else:
        full_values = cem_cell["values"]
        # Timings are deliberately not journaled (they would make two
        # runs of one config byte-different); pre-unification journals
        # may still carry the key, so keep reading it.
        cem_seconds = float(cem_cell.get("cem_seconds_per_window", 0.0))
    for key, value in full_values.items():
        values[key]["Transformer+KAL+CEM"] = value

    return Table1Result(
        values=values,
        train_seconds=train_seconds,
        num_test_windows=len(test),
        cem_seconds_per_window=cem_seconds,
    )
