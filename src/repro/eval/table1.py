"""Regenerates Table 1: consistency and downstream errors for 4 methods.

Rows (all normalised errors, lower is better):

    a. Max Constraint            d. Burst Detection       g. Burst Interarrival
    b. Periodic Constraint       e. Burst Height          h. Empty Queue Freq.
    c. Sent pkts count           f. Burst Frequency       i. Concurrent bursts

Columns: IterImputer | Transformer | Transformer+KAL | Transformer+KAL+CEM.

Expected shape versus the paper: KAL shrinks the consistency errors
(sometimes overshooting row a), CEM nullifies rows a–c exactly, and the
downstream rows improve monotonically from IterImputer through the full
method, with CEM occasionally a wash on burst frequency (row f) — the
consistency/pattern trade-off §4 discusses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.constraints.spec import check_constraints
from repro.downstream.metrics import DownstreamReport, evaluate_downstream
from repro.eval.report import format_table
from repro.eval.scenarios import ScenarioConfig, generate_dataset, paper_scenario
from repro.imputation.cem import ConstraintEnforcer
from repro.imputation.iterative import IterativeImputer
from repro.imputation.trainer import Trainer, TrainerConfig
from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer
from repro.telemetry.dataset import TelemetryDataset

ROW_LABELS = {
    "max": "a. Max Constraint",
    "periodic": "b. Periodic Constraint",
    "sent": "c. Sent pkts count Constraint",
    "burst_detection": "d. Burst Detection",
    "burst_height": "e. Burst Height",
    "burst_frequency": "f. Burst Frequency",
    "burst_interarrival": "g. Burst Interarrival Time",
    "empty_queue": "h. Empty Queue Frequency",
    "concurrent_bursts": "i. Avg count of concurrent bursts",
}

METHODS = ("IterImputer", "Transformer", "Transformer+KAL", "Transformer+KAL+CEM")


@dataclass
class Table1Config:
    """Knobs for the Table-1 run; defaults match the paper-like scenario."""

    scenario: ScenarioConfig = field(default_factory=paper_scenario)
    epochs: int = 30
    batch_size: int = 8
    learning_rate: float = 1e-3
    d_model: int = 32
    num_layers: int = 2
    d_ff: int = 64
    num_heads: int = 4
    mu: float = 0.5
    burst_threshold: float = 5.0
    seed: int = 0


@dataclass
class Table1Result:
    """The regenerated table plus training metadata."""

    values: dict[str, dict[str, float]]  # row key -> method -> error
    train_seconds: dict[str, float]
    num_test_windows: int
    cem_seconds_per_window: float

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        headers = ["Error Metric", *METHODS]
        rows = []
        for key, label in ROW_LABELS.items():
            rows.append([label] + [f"{self.values[key][m]:.3f}" for m in METHODS])
        return format_table(headers, rows)

    def improvement_over_transformer(self) -> dict[str, float]:
        """% improvement of the full method over the plain transformer on
        the downstream rows (the paper reports 11–96%)."""
        out = {}
        for key in (
            "burst_detection",
            "burst_height",
            "burst_frequency",
            "burst_interarrival",
            "empty_queue",
            "concurrent_bursts",
        ):
            base = self.values[key]["Transformer"]
            full = self.values[key]["Transformer+KAL+CEM"]
            out[key] = 100.0 * (base - full) / base if base > 0 else 0.0
        return out


def _evaluate_method(
    impute_fn,
    test: TelemetryDataset,
    config: Table1Config,
) -> tuple[dict[str, float], float]:
    """Mean consistency + downstream errors of a method over the test set.

    Returns the per-row errors and the mean per-window imputation time.
    """
    consistency = {"max": [], "periodic": [], "sent": []}
    downstream: list[DownstreamReport] = []
    elapsed = 0.0
    for sample in test.samples:
        start = time.perf_counter()
        imputed = impute_fn(sample)
        elapsed += time.perf_counter() - start
        report = check_constraints(imputed, sample, test.switch_config)
        consistency["max"].append(report.max_error)
        consistency["periodic"].append(report.periodic_error)
        consistency["sent"].append(report.sent_error)
        downstream.append(
            evaluate_downstream(imputed, sample.target_raw, config.burst_threshold)
        )
    averaged = DownstreamReport.average(downstream)
    values = {key: float(np.mean(v)) for key, v in consistency.items()}
    values.update(
        burst_detection=averaged.burst_detection,
        burst_height=averaged.burst_height,
        burst_frequency=averaged.burst_frequency,
        burst_interarrival=averaged.burst_interarrival,
        empty_queue=averaged.empty_queue,
        concurrent_bursts=averaged.concurrent_bursts,
    )
    return values, elapsed / max(len(test.samples), 1)


def train_transformer(
    train: TelemetryDataset,
    val: TelemetryDataset,
    config: Table1Config,
    use_kal: bool,
) -> tuple[TransformerImputer, float]:
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            d_ff=config.d_ff,
        ),
        train.scaler,
        seed=config.seed,
    )
    trainer = Trainer(
        model,
        train,
        TrainerConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            use_kal=use_kal,
            mu=config.mu,
            seed=config.seed,
        ),
        val=val,
    )
    start = time.perf_counter()
    trainer.train()
    return model, time.perf_counter() - start


def run_table1(
    config: Table1Config | None = None,
    datasets: tuple[TelemetryDataset, TelemetryDataset, TelemetryDataset] | None = None,
    pretrained: tuple[TransformerImputer, TransformerImputer] | None = None,
) -> Table1Result:
    """Run the full Table-1 experiment.

    ``datasets`` may be passed in to reuse a simulation, and ``pretrained``
    = (plain_model, kal_model) to reuse trained transformers (e.g. from a
    benchmark fixture); otherwise everything is built fresh.
    """
    config = config if config is not None else Table1Config()
    if datasets is None:
        datasets = generate_dataset(config.scenario, seed=config.seed)
    train, val, test = datasets
    if len(test) == 0:
        raise ValueError("test split is empty; increase duration_bins")

    values: dict[str, dict[str, float]] = {key: {} for key in ROW_LABELS}
    train_seconds: dict[str, float] = {}

    iterative = IterativeImputer()
    iter_values, _ = _evaluate_method(iterative.impute, test, config)
    for key, value in iter_values.items():
        values[key]["IterImputer"] = value

    if pretrained is not None:
        plain_model, kal_model = pretrained
    else:
        plain_model, seconds = train_transformer(train, val, config, use_kal=False)
        train_seconds["Transformer"] = seconds
        kal_model, seconds = train_transformer(train, val, config, use_kal=True)
        train_seconds["Transformer+KAL"] = seconds

    plain_values, _ = _evaluate_method(plain_model.impute, test, config)
    for key, value in plain_values.items():
        values[key]["Transformer"] = value

    kal_values, _ = _evaluate_method(kal_model.impute, test, config)
    for key, value in kal_values.items():
        values[key]["Transformer+KAL"] = value

    enforcer = ConstraintEnforcer(test.switch_config)

    def full_method(sample):
        return enforcer.enforce(kal_model.impute(sample), sample)

    full_values, cem_seconds = _evaluate_method(full_method, test, config)
    for key, value in full_values.items():
        values[key]["Transformer+KAL+CEM"] = value

    return Table1Result(
        values=values,
        train_seconds=train_seconds,
        num_test_windows=len(test),
        cem_seconds_per_window=cem_seconds,
    )
