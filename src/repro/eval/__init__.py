"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`~repro.eval.scenarios` — the evaluation scenario of §4 (websearch +
  incast traffic through a shared-buffer switch) and dataset generation.
* :mod:`~repro.eval.parallel` — multiprocessing fan-out of multi-seed /
  multi-scenario trace generation, composing with the on-disk trace cache.
* :mod:`~repro.eval.table1` — Table 1: consistency + downstream errors for
  the four methods.
* :mod:`~repro.eval.figures` — the data behind Fig. 1 (sampling hides
  incidents) and Fig. 4 (qualitative comparison of the methods).
* :mod:`~repro.eval.scalability` — §2.3/§4 scalability: FM-only solve time
  versus horizon, and CEM correction time per window.
* :mod:`~repro.eval.report` — plain-text table rendering.
"""

from repro.eval.scenarios import (
    ScenarioConfig,
    dataset_from_trace,
    generate_dataset,
    generate_trace,
    paper_scenario,
    quick_scenario,
    trace_cache_params,
)
from repro.eval.parallel import (
    derive_seeds,
    generate_datasets,
    generate_traces,
    generate_traces_supervised,
    simulate_jobs,
    simulate_jobs_supervised,
)
from repro.eval.table1 import Table1Config, Table1Result, run_table1
from repro.eval.figures import fig1_data, fig4_data, pick_representative
from repro.eval.scalability import cem_timing, fm_scaling
from repro.eval.report import format_table, render_series
from repro.eval.upscaling import UpscalingPoint, run_upscaling
from repro.eval.replication import ReplicatedTable, run_replicated_table1

__all__ = [
    "ScenarioConfig",
    "generate_trace",
    "generate_dataset",
    "dataset_from_trace",
    "trace_cache_params",
    "paper_scenario",
    "quick_scenario",
    "derive_seeds",
    "simulate_jobs",
    "simulate_jobs_supervised",
    "generate_traces",
    "generate_traces_supervised",
    "generate_datasets",
    "Table1Config",
    "Table1Result",
    "run_table1",
    "fig1_data",
    "fig4_data",
    "pick_representative",
    "fm_scaling",
    "cem_timing",
    "format_table",
    "render_series",
    "UpscalingPoint",
    "run_upscaling",
    "ReplicatedTable",
    "run_replicated_table1",
]
