"""Cross-seed replication of the Table-1 experiment.

A single-seed table (the paper's, and this repo's default) conflates the
methods' true ordering with simulation and initialisation luck.  This
harness reruns the full Table-1 pipeline across seeds — fresh traffic,
fresh splits, fresh model initialisation per seed — and aggregates each
cell into mean ± standard deviation, so claims like "the full method
improves on the transformer" can be checked for seed-robustness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.eval.report import format_table
from repro.eval.table1 import METHODS, ROW_LABELS, Table1Config, Table1Result, run_table1


@dataclass
class ReplicationConfig:
    """Declarative form of the cross-seed replication experiment.

    ``table1`` is the per-seed configuration (its own ``seed`` field is
    ignored — each run gets one of ``seeds`` instead, exactly as
    :func:`run_replicated_table1` does).
    """

    table1: Table1Config = field(default_factory=Table1Config)
    seeds: tuple[int, ...] = (0, 1, 2)


@dataclass
class ReplicatedTable:
    """Per-cell mean and standard deviation across seeds."""

    mean: dict[str, dict[str, float]]  # row -> method -> mean error
    std: dict[str, dict[str, float]]
    seeds: list[int]
    runs: list[Table1Result]

    def render(self) -> str:
        """Text table with mean±std cells."""
        headers = ["Error Metric", *METHODS]
        rows = []
        for key, label in ROW_LABELS.items():
            rows.append(
                [label]
                + [
                    f"{self.mean[key][m]:.3f}±{self.std[key][m]:.3f}"
                    for m in METHODS
                ]
            )
        return format_table(headers, rows)

    def win_rate(self, method: str, baseline: str, rows: list[str] | None = None) -> float:
        """Fraction of (seed, row) cells where ``method`` beats ``baseline``."""
        keys = rows if rows is not None else list(ROW_LABELS)
        wins = total = 0
        for run in self.runs:
            for key in keys:
                total += 1
                wins += run.values[key][method] < run.values[key][baseline]
        return wins / max(total, 1)


def run_replicated_table1(
    config: Table1Config,
    seeds: list[int],
) -> ReplicatedTable:
    """Run Table 1 once per seed and aggregate.

    Each seed re-simulates the scenario, re-splits, and re-initialises the
    models (the seed is threaded through ``Table1Config.seed``).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    runs: list[Table1Result] = []
    for seed in seeds:
        runs.append(run_table1(replace(config, seed=int(seed))))

    mean: dict[str, dict[str, float]] = {}
    std: dict[str, dict[str, float]] = {}
    for key in ROW_LABELS:
        mean[key] = {}
        std[key] = {}
        for method in METHODS:
            values = np.array([run.values[key][method] for run in runs])
            mean[key][method] = float(values.mean())
            std[key][method] = float(values.std())
    return ReplicatedTable(mean=mean, std=std, seeds=[int(s) for s in seeds], runs=runs)
