"""Data behind Fig. 1 and Fig. 4.

These functions return plain arrays/dicts so the benchmark harness and the
examples can print (or plot) the same series the paper's figures show:

* **Fig. 1** — one queue's fine-grained series with the coarse-grained
  measurements overlaid (periodic samples, per-interval max, per-interval
  sent/drop counts), demonstrating how sampling hides incidents and how
  the auxiliary series correlate with queue growth.
* **Fig. 4** — the same representative incident imputed by each method:
  (a) IterativeImputer, (b) transformer-only, (c) +KAL, (d) +KAL+CEM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.switchsim.simulation import SimulationTrace
from repro.telemetry.dataset import ImputationSample, TelemetryDataset
from repro.telemetry.sampling import sample_trace


@dataclass
class Fig1Data:
    """Series plotted in Fig. 1 for one queue."""

    fine_qlen: np.ndarray  # (T,) the ground truth the operator cannot see
    sample_positions: np.ndarray  # (I,)
    periodic_samples: np.ndarray  # (I,)
    max_per_interval: np.ndarray  # (I,)
    sent_per_interval: np.ndarray  # (I,) for the queue's port
    dropped_per_interval: np.ndarray  # (I,)
    interval: int

    def correlation_sent_vs_qlen(self) -> float:
        """Correlation between per-interval max qlen and sent count —
        Fig. 1's point that the coarse series are correlated."""
        if len(self.max_per_interval) < 2:
            return 0.0
        return float(np.corrcoef(self.max_per_interval, self.sent_per_interval)[0, 1])


def fig1_data(trace: SimulationTrace, queue: int, interval: int = 50) -> Fig1Data:
    """Extract the Fig.-1 series for one queue of a trace."""
    telemetry = sample_trace(trace, interval)
    port = queue // trace.config.queues_per_port
    span = telemetry.num_intervals * interval
    return Fig1Data(
        fine_qlen=trace.qlen[queue, :span].astype(float),
        sample_positions=telemetry.sample_positions(span),
        periodic_samples=telemetry.qlen_sample[queue].astype(float),
        max_per_interval=telemetry.qlen_max[queue].astype(float),
        sent_per_interval=telemetry.sent[port].astype(float),
        dropped_per_interval=telemetry.dropped[port].astype(float),
        interval=interval,
    )


def pick_representative(dataset: TelemetryDataset) -> tuple[int, int]:
    """Pick the (window, queue) with the most prominent burst.

    "Prominent" = largest gap between the LANZ max and the periodic sample
    in some interval — exactly the situation Fig. 4 showcases, where the
    sampling misses the burst peak.
    """
    best = (0, 0)
    best_gap = -1.0
    for w, sample in enumerate(dataset.samples):
        gaps = sample.m_max - sample.m_sample  # (Q, I)
        queue, _ = np.unravel_index(np.argmax(gaps), gaps.shape)
        gap = float(gaps.max())
        if gap > best_gap:
            best_gap = gap
            best = (w, int(queue))
    return best


@dataclass
class Fig4Data:
    """One incident imputed by every method (Fig. 4 panels a–d)."""

    queue: int
    window: int
    ground_truth: np.ndarray  # (T,)
    sample_positions: np.ndarray
    periodic_samples: np.ndarray
    max_per_interval: np.ndarray
    series: dict[str, np.ndarray]  # method name -> (T,) imputed series


def fig4_data(
    dataset: TelemetryDataset,
    imputers: dict[str, "callable"],
    window: int | None = None,
    queue: int | None = None,
) -> Fig4Data:
    """Impute one representative window with each method.

    ``imputers`` maps method name → callable(sample) → (Q, T) array.
    """
    if window is None or queue is None:
        window, queue = pick_representative(dataset)
    sample: ImputationSample = dataset[window]
    series = {name: np.asarray(fn(sample))[queue] for name, fn in imputers.items()}
    return Fig4Data(
        queue=queue,
        window=window,
        ground_truth=sample.target_raw[queue],
        sample_positions=sample.sample_positions,
        periodic_samples=sample.m_sample[queue],
        max_per_interval=sample.m_max[queue],
        series=series,
    )
