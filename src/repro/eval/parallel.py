"""Parallel multi-seed / multi-scenario dataset generation.

Ground-truth generation is embarrassingly parallel across seeds and
scenarios: every (scenario, seed) pair is an independent deterministic
simulation.  This module fans those jobs out over a ``multiprocessing``
pool and composes with :class:`~repro.switchsim.cache.TraceCache` so that
only cache *misses* are simulated — a re-run of an unchanged sweep spawns
no workers at all.

Determinism
-----------

Workers receive integer seeds, and :func:`repro.eval.scenarios.
build_traffic` derives all component RNGs from the seed alone, so a trace
is bit-identical whether it is produced serially, by a pool worker, or
read back from the cache (the equivalence is asserted in
``tests/eval/test_parallel.py``).  :func:`derive_seeds` turns one base
seed into a reproducible family of per-job seeds via
:class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

import numpy as np

from repro.eval.scenarios import (
    CacheLike,
    ScenarioConfig,
    _coerce_cache,
    dataset_from_trace,
    generate_trace,
    trace_cache_params,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.switchsim.cache import TraceCache
from repro.switchsim.simulation import SimulationTrace

#: A single unit of work: simulate this scenario with this seed.
Job = tuple[ScenarioConfig, int]

DatasetSplits = tuple[TelemetryDataset, TelemetryDataset, TelemetryDataset]


def derive_seeds(base_seed: int, count: int) -> list[int]:
    """``count`` reproducible, statistically independent integer seeds.

    Uses :class:`numpy.random.SeedSequence` spawning, the supported way
    to key independent streams off one root seed; the same
    ``(base_seed, count)`` always yields the same list, and any prefix of
    a longer family matches the shorter one.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(int(base_seed)).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def _simulate_job(job_engine: tuple[ScenarioConfig, int, str]) -> SimulationTrace:
    """Pool worker: one uncached simulation (module-level, so picklable)."""
    config, seed, engine = job_engine
    return generate_trace(config, seed=seed, cache=None, engine=engine)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (no re-import cost); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def simulate_jobs(
    jobs: Sequence[Job],
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
) -> list[SimulationTrace]:
    """Simulate every (scenario, seed) job, in input order.

    The parent process resolves cache hits first; only misses are
    dispatched to the pool, and their results are stored back into the
    cache by the parent.  ``workers=None`` sizes the pool to
    ``min(len(misses), cpu_count)``; ``workers<=1`` (or a single miss)
    runs serially in-process, avoiding pool overhead.
    """
    cache = _coerce_cache(cache)
    jobs = [(config, int(seed)) for config, seed in jobs]
    traces: list[SimulationTrace | None] = [None] * len(jobs)

    misses: list[int] = []
    for i, (config, seed) in enumerate(jobs):
        if cache is not None:
            cached = cache.get(trace_cache_params(config, seed))
            if cached is not None:
                traces[i] = cached
                continue
        misses.append(i)

    if misses:
        if workers is None:
            workers = min(len(misses), os.cpu_count() or 1)
        work = [(jobs[i][0], jobs[i][1], engine) for i in misses]
        if workers <= 1 or len(misses) == 1:
            results = [_simulate_job(item) for item in work]
        else:
            with _pool_context().Pool(processes=workers) as pool:
                results = pool.map(_simulate_job, work)
        for i, trace in zip(misses, results):
            traces[i] = trace
            if cache is not None:
                cache.put(trace_cache_params(jobs[i][0], jobs[i][1]), trace)

    return traces  # type: ignore[return-value]  # every slot is filled above


def generate_traces(
    config: ScenarioConfig,
    seeds: Sequence[int],
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
) -> list[SimulationTrace]:
    """Multi-seed fan-out of :func:`~repro.eval.scenarios.generate_trace`."""
    return simulate_jobs(
        [(config, seed) for seed in seeds], workers=workers, cache=cache, engine=engine
    )


def generate_datasets(
    config: ScenarioConfig,
    seeds: Sequence[int],
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
) -> list[DatasetSplits]:
    """Multi-seed fan-out of :func:`~repro.eval.scenarios.generate_dataset`.

    Simulation happens in the pool; the (cheap, seed-deterministic)
    windowing and splitting happen in the parent, so each returned
    (train, val, test) triple equals a serial ``generate_dataset`` call.
    """
    traces = generate_traces(
        config, seeds, workers=workers, cache=cache, engine=engine
    )
    return [
        dataset_from_trace(config, trace, seed=int(seed))
        for trace, seed in zip(traces, seeds)
    ]
