"""Parallel multi-seed / multi-scenario dataset generation.

Ground-truth generation is embarrassingly parallel across seeds and
scenarios: every (scenario, seed) pair is an independent deterministic
simulation.  This module fans those jobs out over a ``multiprocessing``
pool and composes with :class:`~repro.switchsim.cache.TraceCache` so that
only cache *misses* are simulated — a re-run of an unchanged sweep spawns
no workers at all.

Determinism
-----------

Workers receive integer seeds, and :func:`repro.eval.scenarios.
build_traffic` derives all component RNGs from the seed alone, so a trace
is bit-identical whether it is produced serially, by a pool worker, or
read back from the cache (the equivalence is asserted in
``tests/eval/test_parallel.py``).  :func:`derive_seeds` turns one base
seed into a reproducible family of per-job seeds via
:class:`numpy.random.SeedSequence`.

Fault tolerance
---------------

:func:`simulate_jobs` is the fast, zero-overhead default: one casualty
(crash, hang) aborts the sweep, exactly as in the seed code.  For long
sweeps, :func:`simulate_jobs_supervised` runs the misses under a
:class:`~repro.resilience.supervisor.Supervisor` — per-job timeouts,
bounded retry with backoff, crash respawn — and degrades gracefully into
a :class:`~repro.resilience.supervisor.SweepResult` carrying the
completed traces plus a structured ``FailureReport``.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

import numpy as np

import repro.obs as obs
from repro.eval.scenarios import (
    CacheLike,
    ScenarioConfig,
    _coerce_cache,
    dataset_from_trace,
    generate_trace,
    trace_cache_params,
)
from repro.resilience.supervisor import (
    AttemptRecord,
    FailureReport,
    JobFailure,
    RetryPolicy,
    Supervisor,
    SweepResult,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.switchsim.cache import TraceCache
from repro.switchsim.simulation import SimulationTrace

#: A single unit of work: simulate this scenario with this seed.
Job = tuple[ScenarioConfig, int]

DatasetSplits = tuple[TelemetryDataset, TelemetryDataset, TelemetryDataset]


def derive_seeds(base_seed: int, count: int) -> list[int]:
    """``count`` reproducible, statistically independent integer seeds.

    Uses :class:`numpy.random.SeedSequence` spawning, the supported way
    to key independent streams off one root seed; the same
    ``(base_seed, count)`` always yields the same list, and any prefix of
    a longer family matches the shorter one.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(int(base_seed)).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def _simulate_job(job_engine: tuple[ScenarioConfig, int, str]) -> SimulationTrace:
    """Pool worker: one uncached simulation (module-level, so picklable)."""
    config, seed, engine = job_engine
    with obs.span("parallel.job", seed=int(seed)):
        trace = generate_trace(config, seed=seed, cache=None, engine=engine)
    # Pool workers exit via os._exit (no atexit): flush inherited
    # observability here or the child's spans/metrics are lost.
    obs.child_flush()
    return trace


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (no re-import cost); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def simulate_jobs(
    jobs: Sequence[Job],
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
) -> list[SimulationTrace]:
    """Simulate every (scenario, seed) job, in input order.

    The parent process resolves cache hits first; only misses are
    dispatched to the pool, and their results are stored back into the
    cache by the parent.  ``workers=None`` sizes the pool to
    ``min(len(misses), cpu_count)``; ``workers<=1`` (or a single miss)
    runs serially in-process, avoiding pool overhead.
    """
    cache = _coerce_cache(cache)
    jobs = [(config, int(seed)) for config, seed in jobs]
    traces: list[SimulationTrace | None] = [None] * len(jobs)

    with obs.span("parallel.simulate_jobs", jobs=len(jobs)) as span:
        misses: list[int] = []
        for i, (config, seed) in enumerate(jobs):
            if cache is not None:
                cached = cache.get(trace_cache_params(config, seed))
                if cached is not None:
                    traces[i] = cached
                    continue
            misses.append(i)
        span.annotate(misses=len(misses))

        if misses:
            if workers is None:
                workers = min(len(misses), os.cpu_count() or 1)
            work = [(jobs[i][0], jobs[i][1], engine) for i in misses]
            if workers <= 1 or len(misses) == 1:
                results = [_simulate_job(item) for item in work]
            else:
                with _pool_context().Pool(processes=workers) as pool:
                    results = pool.map(_simulate_job, work)
            for i, trace in zip(misses, results):
                traces[i] = trace
                if cache is not None:
                    cache.put(trace_cache_params(jobs[i][0], jobs[i][1]), trace)

    return traces  # type: ignore[return-value]  # every slot is filled above


def simulate_jobs_supervised(
    jobs: Sequence[Job],
    policy: RetryPolicy | None = None,
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
    job_fn=None,
) -> SweepResult:
    """Fault-tolerant variant of :func:`simulate_jobs`.

    The same cache-hits-in-parent / misses-to-workers split, but misses
    run under a :class:`~repro.resilience.supervisor.Supervisor`: a hung
    worker is killed at ``policy.timeout`` and retried with backoff, a
    crashed worker is respawned, and a job that exhausts its attempts
    becomes a :class:`~repro.resilience.supervisor.JobFailure` instead of
    an exception — the sweep always returns every trace it completed.
    Retries are bit-identical to first tries because each job is a
    deterministic function of its (scenario, seed) payload.

    ``job_fn`` overrides the worker entry point (the fault-injection
    tests wrap the real one); it must accept the same
    ``(config, seed, engine)`` payload tuples.
    """
    cache = _coerce_cache(cache)
    jobs = [(config, int(seed)) for config, seed in jobs]
    traces: list[SimulationTrace | None] = [None] * len(jobs)
    report = FailureReport(total_jobs=len(jobs))

    with obs.span("parallel.simulate_jobs_supervised", jobs=len(jobs)):
        return _simulate_jobs_supervised(
            jobs, traces, report, policy, workers, cache, engine, job_fn
        )


def _simulate_jobs_supervised(
    jobs, traces, report, policy, workers, cache, engine, job_fn
) -> SweepResult:
    misses: list[int] = []
    for i, (config, seed) in enumerate(jobs):
        if cache is not None:
            cached = cache.get(trace_cache_params(config, seed))
            if cached is not None:
                traces[i] = cached
                continue
        misses.append(i)

    if misses:
        supervisor = Supervisor(
            job_fn if job_fn is not None else _simulate_job,
            policy=policy,
            workers=workers,
        )
        sweep = supervisor.run([(jobs[i][0], jobs[i][1], engine) for i in misses])
        report.retries = sweep.report.retries
        # Remap the supervisor's miss-local indices onto job indices.
        report.failures = [
            JobFailure(
                misses[f.index],
                f.kind,
                f.attempts,
                f.message,
                backoff_seconds=f.backoff_seconds,
                wall_seconds=f.wall_seconds,
            )
            for f in sweep.report.failures
        ]
        report.attempt_log = [
            AttemptRecord(
                misses[a.index], a.attempt, a.outcome, a.seconds, a.backoff_seconds
            )
            for a in sweep.report.attempt_log
        ]
        failed = set(f.index for f in report.failures)
        for local, i in enumerate(misses):
            if i in failed:
                continue
            traces[i] = sweep.results[local]
            if cache is not None:
                cache.put(trace_cache_params(jobs[i][0], jobs[i][1]), traces[i])

    return SweepResult(traces, report)


def generate_traces_supervised(
    config: ScenarioConfig,
    seeds: Sequence[int],
    policy: RetryPolicy | None = None,
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
) -> SweepResult:
    """Multi-seed fan-out under supervision (see :func:`simulate_jobs_supervised`)."""
    return simulate_jobs_supervised(
        [(config, seed) for seed in seeds],
        policy=policy,
        workers=workers,
        cache=cache,
        engine=engine,
    )


def generate_traces(
    config: ScenarioConfig,
    seeds: Sequence[int],
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
) -> list[SimulationTrace]:
    """Multi-seed fan-out of :func:`~repro.eval.scenarios.generate_trace`."""
    return simulate_jobs(
        [(config, seed) for seed in seeds], workers=workers, cache=cache, engine=engine
    )


def generate_datasets(
    config: ScenarioConfig,
    seeds: Sequence[int],
    workers: int | None = None,
    cache: CacheLike = None,
    engine: str = "auto",
) -> list[DatasetSplits]:
    """Multi-seed fan-out of :func:`~repro.eval.scenarios.generate_dataset`.

    Simulation happens in the pool; the (cheap, seed-deterministic)
    windowing and splitting happen in the parent, so each returned
    (train, val, test) triple equals a serial ``generate_dataset`` call.
    """
    traces = generate_traces(
        config, seeds, workers=workers, cache=cache, engine=engine
    )
    return [
        dataset_from_trace(config, trace, seed=int(seed))
        for trace, seed in zip(traces, seeds)
    ]
