"""The pluggable-scenario registry entries: fabric, AQM, and flow-level.

Three new end-to-end scenarios compose the pluggable pieces — the
leaf-spine :class:`~repro.switchsim.fabric.Fabric`, the
:class:`~repro.switchsim.aqm.AqmPolicy` strategies, and the flow-level
:class:`~repro.traffic.flows.FlowTrafficGenerator` — into runnable
experiments (``repro run <name>``):

* ``leaf_spine_small`` — websearch traffic across a small leaf-spine
  fabric; per-(switch, queue) datasets with optional cross-switch
  correlation features.
* ``red_websearch`` — the paper's single-switch websearch+incast
  scenario under RED early-drop admission instead of plain DT.
* ``flow_incast`` — flow-level background traffic (sizes *and* RTTs
  sampled, packets paced per flow) plus the incast bursts.

Every run function honours ``--selfcheck``: the per-switch trace runs
the PR-2 invariant oracles (C1–C3 backbone: conservation, occupancy,
DT bound, work conservation) and every produced dataset goes through
:func:`~repro.testing.oracles.check_dataset_consistency`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.eval.scenarios import ScenarioConfig, quick_scenario
from repro.switchsim.aqm import AqmConfig
from repro.switchsim.fabric import TopologyConfig
from repro.traffic.flows import FlowTrafficConfig
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_positive

__all__ = [
    "FlowIncastConfig",
    "LeafSpineConfig",
    "RedWebsearchConfig",
    "build_flow_incast_traffic",
    "build_leaf_traffic",
    "run_flow_incast_experiment",
    "run_leaf_spine_experiment",
    "run_red_websearch_experiment",
]


# ----------------------------------------------------------------------
# Configs (schema-facing, TOML-expressible)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeafSpineConfig:
    """Websearch traffic across a leaf-spine fabric.

    Each leaf injects its own websearch flow pool addressed to *global*
    hosts (uniform), so a ``websearch_load`` fraction of every leaf's
    host capacity crosses the fabric; roughly half of it transits a
    spine.  Windowing parameters mirror :class:`~repro.eval.scenarios.
    ScenarioConfig`; ``cross_switch_features`` appends one peer-summary
    channel per other switch to every sample (see
    :mod:`repro.telemetry.fabric`).
    """

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    aqm: AqmConfig = field(default_factory=AqmConfig)
    websearch_load: float = 0.35
    websearch_sources: int = 8
    steps_per_bin: int = 8
    duration_bins: int = 1200
    interval: int = 25
    window_intervals: int = 4
    stride_intervals: int = 2
    cross_switch_features: bool = True
    seed: int = 0

    def __post_init__(self):
        check_positive("duration_bins", self.duration_bins)
        check_positive("steps_per_bin", self.steps_per_bin)
        check_positive("interval", self.interval)
        check_positive("window_intervals", self.window_intervals)
        check_positive("stride_intervals", self.stride_intervals)
        check_positive("websearch_sources", self.websearch_sources)
        if not 0 < self.websearch_load:
            raise ValueError(
                f"websearch_load must be > 0, got {self.websearch_load}"
            )


@dataclass(frozen=True)
class RedWebsearchConfig:
    """The paper scenario under RED early-drop admission.

    ``scenario`` is the unchanged single-switch workload description;
    ``aqm`` must not be plain ``"dt"`` (that is just ``simulate``).
    The reference engine runs the policy (``engine="auto"`` falls back
    automatically — the array fast path is DT-only by design).
    """

    scenario: ScenarioConfig = field(default_factory=quick_scenario)
    aqm: AqmConfig = field(
        default_factory=lambda: AqmConfig(policy="red")
    )
    seed: int = 0

    def __post_init__(self):
        if self.aqm.policy == "dt":
            raise ValueError(
                'red_websearch needs a non-"dt" aqm policy; '
                "use the simulate experiment for plain DT"
            )


@dataclass(frozen=True)
class FlowIncastConfig:
    """Flow-level background traffic plus the scenario's incast bursts.

    ``flow_traffic`` replaces the line-rate websearch source pool with
    the paced flow-level mode (:class:`~repro.traffic.flows.
    FlowTrafficGenerator`); the incast component and the switch/window
    geometry still come from ``scenario``.
    """

    scenario: ScenarioConfig = field(default_factory=quick_scenario)
    flow_traffic: FlowTrafficConfig = field(
        # ~0.56 offered load on the quick scenario's two ports
        # (0.005 flows/step x ~224 pkts mean websearch flow / 2 ports).
        default_factory=lambda: FlowTrafficConfig(flows_per_step=0.005)
    )
    seed: int = 0

    def __post_init__(self):
        if self.flow_traffic.num_ports != self.scenario.num_ports:
            raise ValueError(
                f"flow_traffic.num_ports ({self.flow_traffic.num_ports}) must "
                f"match scenario.num_ports ({self.scenario.num_ports})"
            )
        if len(self.flow_traffic.class_weights) != self.scenario.queues_per_port:
            raise ValueError(
                "flow_traffic.class_weights must have one weight per queue "
                f"class: got {len(self.flow_traffic.class_weights)} for "
                f"{self.scenario.queues_per_port} queues"
            )


# ----------------------------------------------------------------------
# Traffic builders
# ----------------------------------------------------------------------
def build_leaf_traffic(config: LeafSpineConfig, seed: RngLike = 0) -> list:
    """One websearch generator per leaf, addressing global hosts.

    Offered load per leaf = ``websearch_load`` × ``hosts_per_leaf``
    packets/step (each leaf drains one packet per host port per step);
    destinations are uniform over all fabric hosts, so cross-leaf flows
    transit a spine.  Child RNGs are spawned per leaf — deterministic
    and independent, and each generator can batch for the fabric feed.
    """
    from repro.traffic.distributions import WebsearchSizes
    from repro.traffic.generators import PoissonFlowTraffic

    topology = config.topology
    child_rngs = spawn_generators(seed, topology.leaves)
    sizes = WebsearchSizes()
    flows_per_step = (
        config.websearch_load * topology.hosts_per_leaf / sizes.mean()
    )
    return [
        PoissonFlowTraffic(
            num_sources=config.websearch_sources,
            num_ports=topology.total_hosts,
            flows_per_step=flows_per_step,
            sizes=sizes,
            seed=child_rngs[leaf],
        )
        for leaf in range(topology.leaves)
    ]


def build_flow_incast_traffic(config: FlowIncastConfig, seed: RngLike = 0):
    """Flow-level background + the scenario's incast bursts.

    The composite mirrors :func:`~repro.eval.scenarios.build_traffic`'s
    RNG discipline: one spawned child stream per component, incast
    victims phase-shifted exactly as in the packet-level scenario.
    """
    from repro.traffic.flows import FlowTrafficGenerator
    from repro.traffic.generators import CompositeTraffic, IncastTraffic

    scenario = config.scenario
    child_rngs = spawn_generators(seed, 1 + len(scenario.incast_dsts))
    background = FlowTrafficGenerator(config.flow_traffic, seed=child_rngs[0])
    period_steps = scenario.incast_period * scenario.steps_per_bin
    incasts = []
    for i, dst in enumerate(scenario.incast_dsts):
        incasts.append(
            IncastTraffic(
                fan_in=scenario.incast_fan_in,
                burst_size=scenario.incast_burst,
                period=period_steps,
                dst_port=dst % scenario.num_ports,
                qclass=min(1, scenario.queues_per_port - 1),
                jitter=scenario.incast_jitter * scenario.steps_per_bin,
                seed=child_rngs[1 + i],
                start_step=(i * period_steps)
                // max(len(scenario.incast_dsts), 1),
            )
        )
    return CompositeTraffic([background, *incasts])


# ----------------------------------------------------------------------
# Run functions (config in, exit code out, report on stdout)
# ----------------------------------------------------------------------
def _report_aqm(policy) -> str:
    if policy is None:
        return ""
    return (
        f", early_drops {policy.early_drops}, marked {policy.packets_marked}"
    )


def run_leaf_spine_experiment(
    config: LeafSpineConfig, selfcheck: bool = False
) -> int:
    """Run the fabric scenario and window every switch into datasets."""
    from repro.switchsim.fabric import Fabric
    from repro.telemetry.fabric import build_fabric_datasets

    fabric = Fabric(
        config.topology,
        build_leaf_traffic(config, seed=config.seed),
        steps_per_bin=config.steps_per_bin,
        aqm=config.aqm,
        selfcheck=selfcheck,
    )
    fabric_trace = fabric.run(config.duration_bins)
    datasets = build_fabric_datasets(
        fabric_trace,
        interval=config.interval,
        window_intervals=config.window_intervals,
        stride_intervals=config.stride_intervals,
        cross_switch_features=config.cross_switch_features,
    )
    print(
        f"leaf_spine: {config.topology.leaves} leaves x "
        f"{config.topology.spines} spines, {config.duration_bins} bins, "
        f"aqm={config.aqm.policy}"
    )
    checked = 0
    for name, trace in fabric_trace.switches.items():
        dataset = datasets[name]
        sample = dataset.samples[0] if dataset.samples else None
        channels = sample.features.shape[1] if sample is not None else 0
        print(
            f"  {name}: sent {int(trace.sent.sum())}, "
            f"dropped {int(trace.dropped.sum())}, "
            f"{len(dataset.samples)} windows x {channels} channels"
        )
        if selfcheck:
            from repro.testing.oracles import check_dataset_consistency

            checked += check_dataset_consistency(dataset)
    if selfcheck:
        print(f"  selfcheck: trace oracles clean, {checked} windows C1-C3 clean")
    return 0


def run_red_websearch_experiment(
    config: RedWebsearchConfig, selfcheck: bool = False
) -> int:
    """Paper workload under RED/ECN admission on the reference engine."""
    from repro.eval.scenarios import build_traffic
    from repro.switchsim.simulation import Simulation
    from repro.telemetry.dataset import build_dataset

    scenario = config.scenario
    switch_config = dataclasses.replace(
        scenario.switch_config(),
        aqm_factory=config.aqm.factory(scenario.buffer_capacity),
    )
    simulation = Simulation(
        switch_config,
        build_traffic(scenario, seed=config.seed),
        steps_per_bin=scenario.steps_per_bin,
        engine="auto",  # falls back to the reference engine under AQM
        selfcheck=selfcheck,
    )
    trace = simulation.run(scenario.duration_bins)
    dataset = build_dataset(
        trace,
        interval=scenario.interval,
        window_intervals=scenario.window_intervals,
        stride_intervals=scenario.stride_intervals,
    )
    print(
        f"red_websearch: aqm={config.aqm.policy}, engine={simulation.engine}, "
        f"{scenario.duration_bins} bins"
    )
    print(
        f"  sent {int(trace.sent.sum())}, dropped {int(trace.dropped.sum())}"
        f"{_report_aqm(simulation.switch.aqm)}, "
        f"{len(dataset.samples)} windows"
    )
    if selfcheck:
        from repro.testing.oracles import check_dataset_consistency

        checked = check_dataset_consistency(dataset)
        print(f"  selfcheck: trace oracles clean, {checked} windows C1-C3 clean")
    return 0


def run_flow_incast_experiment(
    config: FlowIncastConfig, selfcheck: bool = False
) -> int:
    """Flow-level background + incast through the single-switch scenario."""
    from repro.switchsim.simulation import Simulation
    from repro.telemetry.dataset import build_dataset

    scenario = config.scenario
    simulation = Simulation(
        scenario.switch_config(),
        build_flow_incast_traffic(config, seed=config.seed),
        steps_per_bin=scenario.steps_per_bin,
        engine="auto",  # flow generators batch, so the array engine applies
        selfcheck=selfcheck,
    )
    trace = simulation.run(scenario.duration_bins)
    dataset = build_dataset(
        trace,
        interval=scenario.interval,
        window_intervals=scenario.window_intervals,
        stride_intervals=scenario.stride_intervals,
    )
    print(
        f"flow_incast: {config.flow_traffic.flows_per_step} flows/step "
        f"({config.flow_traffic.size_dist} sizes, rtt "
        f"{config.flow_traffic.min_rtt_steps}-{config.flow_traffic.max_rtt_steps} "
        f"steps), engine={simulation.engine}, {scenario.duration_bins} bins"
    )
    print(
        f"  sent {int(trace.sent.sum())}, dropped {int(trace.dropped.sum())}, "
        f"{len(dataset.samples)} windows"
    )
    if selfcheck:
        from repro.testing.oracles import check_dataset_consistency

        checked = check_dataset_consistency(dataset)
        print(f"  selfcheck: trace oracles clean, {checked} windows C1-C3 clean")
    return 0
