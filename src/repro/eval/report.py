"""Plain-text rendering helpers for tables and time series."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width text table with a header separator."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows)) if rows else len(str(headers[c]))
        for c in range(columns)
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[c]) for c, cell in enumerate(cells))

    lines = [fmt(headers), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_series(
    series: np.ndarray,
    height: int = 8,
    width: int | None = None,
    label: str = "",
) -> str:
    """ASCII sparkline-style rendering of a non-negative series.

    Used by the examples to visualise queue lengths without matplotlib.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    if width is not None and len(series) > width:
        # Downsample by max-pooling so bursts stay visible.
        bins = np.array_split(series, width)
        series = np.array([b.max() for b in bins])
    peak = series.max()
    if peak <= 0:
        return f"{label}(all zero, {len(series)} bins)"
    rows = []
    levels = np.ceil(series / peak * height).astype(int)
    for level in range(height, 0, -1):
        row = "".join("█" if levels[t] >= level else " " for t in range(len(series)))
        rows.append(row)
    scale = f"{label}peak={peak:.1f}"
    return "\n".join(rows + [scale])
