"""Granularity upscaling study — the paper's headline "50×" claim.

§1/§4: *"combining ML with FM effectively increases queue-length
monitoring granularity by 50× (from 50 ms to 1 ms)"*.  The upscaling
factor is the ratio of the coarse interval to the fine bin; this module
trains and evaluates the full method at several factors (coarser or finer
monitoring against the same 1 ms ground truth) so the error-vs-factor
curve can be regenerated: error grows with the factor, but the method
stays usable at the paper's 50×.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.constraints.spec import check_constraints
from repro.downstream.metrics import DownstreamReport, evaluate_downstream
from repro.eval.scenarios import ScenarioConfig, generate_trace
from repro.eval.table1 import Table1Config, train_transformer
from repro.imputation.cem import ConstraintEnforcer
from repro.telemetry.dataset import build_dataset
from repro.utils.validation import check_positive


@dataclass
class UpscalingPoint:
    """Accuracy of the full method at one upscaling factor."""

    factor: int  # coarse interval / fine bin
    mae: float  # packets, vs ground truth
    burst_detection: float
    burst_height: float
    consistency_satisfied: float  # fraction of windows (should be 1.0)


def run_upscaling(
    factors: list[int],
    scenario: ScenarioConfig,
    config: Table1Config | None = None,
    windows_per_factor: int = 6,
    seed: int = 0,
) -> list[UpscalingPoint]:
    """Train + evaluate the full pipeline at each upscaling factor.

    The simulated 1 ms ground truth is shared; each factor re-samples it
    at ``factor`` bins per interval and trains its own model (monitoring
    granularity changes the entire input representation).  Window length
    is held at 6 intervals, matching the paper's Fig.-3 shape.
    """
    for factor in factors:
        check_positive("factor", factor)
    config = config if config is not None else Table1Config(scenario=scenario)
    trace = generate_trace(scenario, seed=seed)

    points: list[UpscalingPoint] = []
    for factor in factors:
        dataset = build_dataset(
            trace,
            interval=factor,
            window_intervals=scenario.window_intervals,
            stride_intervals=scenario.stride_intervals,
        )
        train, val, test = dataset.split(0.7, 0.15, seed=seed)
        if len(test) > windows_per_factor:
            test = dataclasses.replace(test, samples=test.samples[:windows_per_factor])
        model, _ = train_transformer(train, val, config, use_kal=True)
        enforcer = ConstraintEnforcer(dataset.switch_config)

        mae = []
        satisfied = 0
        reports: list[DownstreamReport] = []
        for sample in test.samples:
            imputed = enforcer.enforce(model.impute(sample), sample)
            mae.append(float(np.abs(imputed - sample.target_raw).mean()))
            satisfied += check_constraints(
                imputed, sample, dataset.switch_config
            ).satisfied
            reports.append(
                evaluate_downstream(imputed, sample.target_raw, config.burst_threshold)
            )
        averaged = DownstreamReport.average(reports)
        points.append(
            UpscalingPoint(
                factor=factor,
                mae=float(np.mean(mae)),
                burst_detection=averaged.burst_detection,
                burst_height=averaged.burst_height,
                consistency_satisfied=satisfied / max(len(test.samples), 1),
            )
        )
    return points
