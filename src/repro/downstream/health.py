"""RED-style queue-health analysis of (imputed) queue-length series.

Table 1's row h tracks empty-queue frequency because it is "crucial for
queue health", citing RED [Floyd & Jacobson 1993].  RED's control signal
is the *exponentially weighted average* queue length and where it sits
between the min/max thresholds; this module computes that signal from a
queue-length series, so the health assessment an AQM would have made can
be evaluated on imputed data:

* :func:`ewma_queue` — RED's average-queue estimator;
* :func:`red_drop_probability` — the marking/drop probability profile;
* :func:`evaluate_health` — how closely health statistics computed from
  an imputed series track those from the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_1d, check_positive


def ewma_queue(series: np.ndarray, weight: float = 0.02) -> np.ndarray:
    """RED's average queue length: ``avg += weight * (q - avg)`` per bin."""
    series = check_1d("series", series)
    if not 0 < weight <= 1:
        raise ValueError(f"weight must be in (0, 1], got {weight}")
    out = np.empty_like(series)
    avg = 0.0
    for t, q in enumerate(series):
        avg += weight * (q - avg)
        out[t] = avg
    return out


def red_drop_probability(
    avg_queue: np.ndarray,
    min_threshold: float,
    max_threshold: float,
    max_probability: float = 0.1,
) -> np.ndarray:
    """RED's per-bin drop/mark probability from the average queue.

    Zero below ``min_threshold``, linear up to ``max_probability`` at
    ``max_threshold``, and 1.0 beyond (the forced-drop region).
    """
    check_positive("min_threshold", min_threshold)
    if max_threshold <= min_threshold:
        raise ValueError(
            f"max_threshold ({max_threshold}) must exceed min_threshold "
            f"({min_threshold})"
        )
    if not 0 < max_probability <= 1:
        raise ValueError(f"max_probability must be in (0, 1], got {max_probability}")
    avg_queue = check_1d("avg_queue", avg_queue)
    ramp = (avg_queue - min_threshold) / (max_threshold - min_threshold)
    prob = np.clip(ramp, 0.0, 1.0) * max_probability
    prob[avg_queue >= max_threshold] = 1.0
    return prob


@dataclass
class HealthReport:
    """Health-signal errors of an imputed series vs the ground truth."""

    avg_queue_error: float  # relative error of the mean EWMA level
    marking_fraction_error: float  # |frac of bins with p>0 imputed - true|
    forced_drop_agreement: float  # fraction of bins agreeing on p == 1.0


def evaluate_health(
    imputed: np.ndarray,
    truth: np.ndarray,
    min_threshold: float = 5.0,
    max_threshold: float = 15.0,
    weight: float = 0.02,
) -> HealthReport:
    """Compare RED health signals computed from imputed vs true series.

    Inputs are ``(Q, T)``; signals are computed per queue and pooled.
    """
    imputed = np.asarray(imputed, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if imputed.shape != truth.shape:
        raise ValueError(f"shape mismatch: {imputed.shape} vs {truth.shape}")

    avg_errors = []
    marking_true = []
    marking_imputed = []
    forced_agree = []
    for q in range(truth.shape[0]):
        avg_true = ewma_queue(truth[q], weight)
        avg_imp = ewma_queue(imputed[q], weight)
        denom = max(avg_true.mean(), 1e-9)
        avg_errors.append(abs(avg_imp.mean() - avg_true.mean()) / denom)
        p_true = red_drop_probability(avg_true, min_threshold, max_threshold)
        p_imp = red_drop_probability(avg_imp, min_threshold, max_threshold)
        marking_true.append((p_true > 0).mean())
        marking_imputed.append((p_imp > 0).mean())
        forced_agree.append(((p_true == 1.0) == (p_imp == 1.0)).mean())

    return HealthReport(
        avg_queue_error=float(np.mean(avg_errors)),
        marking_fraction_error=float(
            abs(np.mean(marking_imputed) - np.mean(marking_true))
        ),
        forced_drop_agreement=float(np.mean(forced_agree)),
    )
