"""Latency estimation from (imputed) queue lengths.

The paper's introduction motivates fine-grained queue monitoring with
latency guarantees [SNC-Meister] and buffer provisioning.  This module
derives the per-bin queueing-delay estimate a packet arriving in that bin
would experience — by Little's-law reasoning, a queue of ``L`` packets in
front of a server draining ``rate`` packets per bin delays a new arrival
``L / rate`` bins — and scores imputed series on latency-oriented
downstream tasks: tail-latency estimation and SLO-violation detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


def queueing_delay(qlen: np.ndarray, drain_rate: float) -> np.ndarray:
    """Per-bin queueing delay (in bins) seen by an arrival at each bin.

    ``drain_rate`` is the port's service rate in packets per fine bin
    (``steps_per_bin`` in the simulator's units, since one packet leaves
    per time step while the queue is busy).
    """
    check_positive("drain_rate", drain_rate)
    return np.asarray(qlen, dtype=float) / drain_rate


def tail_latency(qlen: np.ndarray, drain_rate: float, percentile: float = 99.0) -> float:
    """The given percentile of the per-bin queueing delay."""
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    return float(np.percentile(queueing_delay(qlen, drain_rate), percentile))


def slo_violations(qlen: np.ndarray, drain_rate: float, slo_bins: float) -> np.ndarray:
    """Boolean per-bin mask: the queueing delay exceeds the SLO."""
    check_positive("slo_bins", slo_bins)
    return queueing_delay(qlen, drain_rate) > slo_bins


@dataclass
class LatencyReport:
    """Latency-task errors of an imputed series vs the ground truth."""

    tail_latency_error: float  # relative error of the p99 queueing delay
    slo_detection_error: float  # 1 - F1 of per-bin SLO-violation detection

    @property
    def values(self) -> dict[str, float]:
        return {
            "tail_latency_error": self.tail_latency_error,
            "slo_detection_error": self.slo_detection_error,
        }


def evaluate_latency(
    imputed: np.ndarray,
    truth: np.ndarray,
    drain_rate: float,
    slo_bins: float = 2.0,
    percentile: float = 99.0,
) -> LatencyReport:
    """Score latency-oriented downstream tasks on one imputed window.

    Both arrays are shaped ``(Q, T)`` in packets.  The tail-latency error
    is averaged over queues with a non-zero true tail; SLO detection is
    per-bin, pooled over all queues.
    """
    imputed = np.asarray(imputed, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if imputed.shape != truth.shape:
        raise ValueError(f"shape mismatch: {imputed.shape} vs {truth.shape}")

    tail_errors = []
    for q in range(truth.shape[0]):
        true_tail = tail_latency(truth[q], drain_rate, percentile)
        pred_tail = tail_latency(imputed[q], drain_rate, percentile)
        if true_tail == 0 and pred_tail == 0:
            continue
        denominator = true_tail if true_tail > 0 else 1.0
        tail_errors.append(abs(pred_tail - true_tail) / denominator)

    true_mask = slo_violations(truth, drain_rate, slo_bins)
    pred_mask = slo_violations(imputed, drain_rate, slo_bins)
    tp = int((true_mask & pred_mask).sum())
    fp = int((~true_mask & pred_mask).sum())
    fn = int((true_mask & ~pred_mask).sum())
    if tp + fp + fn == 0:
        f1 = 1.0  # nothing to detect, nothing falsely detected
    else:
        f1 = 2 * tp / (2 * tp + fp + fn)

    return LatencyReport(
        tail_latency_error=float(np.mean(tail_errors)) if tail_errors else 0.0,
        slo_detection_error=1.0 - f1,
    )
