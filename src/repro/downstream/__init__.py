"""Downstream tasks scoring the imputed series (§4, Table 1 rows d–i).

The paper evaluates imputation quality by how well burst-related network
operations work on the imputed series compared to the ground truth:
burst detection, burst height, burst frequency, burst inter-arrival time,
empty-queue frequency (queue health, RED-style), and the count of
concurrent bursts across queues.
"""

from repro.downstream.bursts import Burst, burst_mask, detect_bursts
from repro.downstream.metrics import (
    DownstreamReport,
    burst_detection_error,
    burst_frequency_error,
    burst_height_error,
    burst_interarrival_error,
    concurrent_burst_error,
    empty_queue_error,
    evaluate_downstream,
)
from repro.downstream.latency import (
    LatencyReport,
    evaluate_latency,
    queueing_delay,
    slo_violations,
    tail_latency,
)
from repro.downstream.provisioning import (
    BurstStatistics,
    burst_statistics,
    provisioning_gap,
    recommend_buffer,
)
from repro.downstream.health import (
    HealthReport,
    evaluate_health,
    ewma_queue,
    red_drop_probability,
)

__all__ = [
    "Burst",
    "detect_bursts",
    "burst_mask",
    "DownstreamReport",
    "burst_detection_error",
    "burst_height_error",
    "burst_frequency_error",
    "burst_interarrival_error",
    "empty_queue_error",
    "concurrent_burst_error",
    "evaluate_downstream",
    "LatencyReport",
    "evaluate_latency",
    "queueing_delay",
    "tail_latency",
    "slo_violations",
    "BurstStatistics",
    "burst_statistics",
    "recommend_buffer",
    "provisioning_gap",
    "HealthReport",
    "evaluate_health",
    "ewma_queue",
    "red_drop_probability",
]
