"""Burst identification in queue-length series.

Follows the threshold method of Woodruff et al. ("Measuring burstiness in
data center applications", Buffer Sizing '19 — [56] in the paper): a burst
is a maximal run of time bins in which the queue length stays above a
threshold; it is characterised by its start, duration and peak height.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_1d, check_non_negative


@dataclass(frozen=True)
class Burst:
    """One burst: bins ``[start, end)`` with peak queue length ``peak``."""

    start: int
    end: int
    peak: float

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Burst") -> bool:
        """Whether the two bursts share at least one bin."""
        return self.start < other.end and other.start < self.end


def detect_bursts(series: np.ndarray, threshold: float = 5.0) -> list[Burst]:
    """Find maximal above-threshold runs in a 1-D queue-length series."""
    series = check_1d("series", series)
    check_non_negative("threshold", threshold)
    above = series > threshold
    if not above.any():
        return []
    # Run-length encode the boolean mask.
    padded = np.diff(np.concatenate([[0], above.astype(np.int8), [0]]))
    starts = np.nonzero(padded == 1)[0]
    ends = np.nonzero(padded == -1)[0]
    return [
        Burst(start=int(s), end=int(e), peak=float(series[s:e].max()))
        for s, e in zip(starts, ends)
    ]


def burst_mask(series: np.ndarray, threshold: float = 5.0) -> np.ndarray:
    """Boolean per-bin mask: bin belongs to a burst."""
    series = check_1d("series", series)
    return series > threshold


def interarrival_times(bursts: list[Burst]) -> np.ndarray:
    """Gaps between consecutive burst starts, in bins (empty if < 2 bursts)."""
    if len(bursts) < 2:
        return np.array([])
    starts = np.array(sorted(b.start for b in bursts), dtype=float)
    return np.diff(starts)
