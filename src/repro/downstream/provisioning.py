"""Buffer provisioning from queue-length series (§2.1's operator task).

The paper's example scenario motivates fine-grained monitoring with an
operator who must decide *"how much on-chip buffer to provision"*:
longitudinal analyses of fine-grained queue lengths reveal *"the common
burst sizes and frequencies to inform the trade-off between accommodating
bursts and reducing switch cost"*.  This module extracts exactly those
statistics from a (measured or imputed) queue-length series and turns
them into a provisioning recommendation:

* :func:`burst_statistics` — burst size/duration/peak distributions;
* :func:`recommend_buffer` — the smallest buffer that absorbs the given
  percentile of observed aggregate occupancy peaks;
* :func:`provisioning_gap` — how far a recommendation computed from an
  imputed series lands from the ground-truth recommendation (the
  downstream metric used by the provisioning example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.downstream.bursts import detect_bursts
from repro.utils.validation import check_positive


@dataclass
class BurstStatistics:
    """Distributional summary of bursts in one queue-length series."""

    count: int
    mean_duration: float  # bins
    mean_peak: float  # packets
    p99_peak: float  # packets
    frequency: float  # bursts per bin

    @classmethod
    def from_series(cls, series: np.ndarray, threshold: float = 5.0) -> "BurstStatistics":
        bursts = detect_bursts(np.asarray(series, dtype=float), threshold)
        if not bursts:
            return cls(count=0, mean_duration=0.0, mean_peak=0.0, p99_peak=0.0, frequency=0.0)
        durations = np.array([b.duration for b in bursts], dtype=float)
        peaks = np.array([b.peak for b in bursts], dtype=float)
        return cls(
            count=len(bursts),
            mean_duration=float(durations.mean()),
            mean_peak=float(peaks.mean()),
            p99_peak=float(np.percentile(peaks, 99)),
            frequency=len(bursts) / len(series),
        )


def burst_statistics(
    qlen: np.ndarray, threshold: float = 5.0
) -> list[BurstStatistics]:
    """Per-queue burst statistics for a ``(Q, T)`` series."""
    qlen = np.asarray(qlen, dtype=float)
    if qlen.ndim != 2:
        raise ValueError(f"qlen must be (queues, bins), got shape {qlen.shape}")
    return [BurstStatistics.from_series(qlen[q], threshold) for q in range(qlen.shape[0])]


def recommend_buffer(
    qlen: np.ndarray, percentile: float = 99.0, headroom: float = 1.1
) -> int:
    """Smallest shared-buffer size absorbing the percentile occupancy peak.

    The aggregate occupancy series is the per-bin sum of all queue
    lengths; the recommendation is its ``percentile`` value times a
    ``headroom`` factor, rounded up — a standard tail-provisioning rule.
    A series that never queues still recommends a minimal buffer of 1.
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    check_positive("headroom", headroom)
    qlen = np.asarray(qlen, dtype=float)
    if qlen.ndim != 2:
        raise ValueError(f"qlen must be (queues, bins), got shape {qlen.shape}")
    occupancy = qlen.sum(axis=0)
    peak = float(np.percentile(occupancy, percentile))
    return max(1, int(np.ceil(peak * headroom)))


def provisioning_gap(
    imputed: np.ndarray,
    truth: np.ndarray,
    percentile: float = 99.0,
    headroom: float = 1.1,
) -> float:
    """Relative error of the buffer recommendation from an imputed series.

    Positive values mean over-provisioning (wasted switch cost), negative
    under-provisioning (burst loss risk) — the §2.1 trade-off, quantified.
    """
    recommended = recommend_buffer(imputed, percentile, headroom)
    reference = recommend_buffer(truth, percentile, headroom)
    return (recommended - reference) / reference
