"""Normalised downstream-task errors (Table 1 rows d–i).

Every metric compares an imputed window ``(Q, T)`` against the ground
truth and returns a normalised, dimensionless error (lower is better), in
the spirit of §4: *"we calculate the normalized errors of burst
occurrence, burst height, burst frequency, average inter-arrival time
between consecutive bursts, and the number of queues experiencing a burst
at the same 1 ms interval"*, plus *"the frequency of empty queues which is
crucial for queue health."*

Conventions:

* relative-magnitude errors are ``|imputed − true| / true`` with the true
  statistic in the denominator (so over-estimation can exceed 1, as the
  paper's row g shows for the IterativeImputer);
* queue×window cells where a statistic is undefined for *both* series
  (e.g. no bursts anywhere) contribute zero error; defined-on-one-side
  cells contribute the maximal mismatch of 1.0 for detection-style
  metrics and the relative error against the defined side otherwise;
* the burst detection error is ``1 − F1`` over overlap-matched bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.downstream.bursts import Burst, burst_mask, detect_bursts, interarrival_times

_EPS = 1e-12


def _relative_error(imputed_stat: float, true_stat: float) -> float:
    """|imputed − true| / true with sane handling of zero denominators."""
    if abs(true_stat) < _EPS:
        return 0.0 if abs(imputed_stat) < _EPS else 1.0
    return abs(imputed_stat - true_stat) / abs(true_stat)


def _match_bursts(imputed: list[Burst], truth: list[Burst]) -> tuple[int, int, int]:
    """Greedy overlap matching; returns (true_pos, false_pos, false_neg)."""
    matched_truth: set[int] = set()
    tp = 0
    for burst in imputed:
        for j, true_burst in enumerate(truth):
            if j not in matched_truth and burst.overlaps(true_burst):
                matched_truth.add(j)
                tp += 1
                break
    fp = len(imputed) - tp
    fn = len(truth) - tp
    return tp, fp, fn


def burst_detection_error(
    imputed: np.ndarray, truth: np.ndarray, threshold: float = 5.0
) -> float:
    """Row d: 1 − F1 of overlap-matched bursts, averaged over queues."""
    errors = []
    for q in range(truth.shape[0]):
        pred = detect_bursts(imputed[q], threshold)
        actual = detect_bursts(truth[q], threshold)
        if not pred and not actual:
            continue
        tp, fp, fn = _match_bursts(pred, actual)
        f1 = 2 * tp / max(2 * tp + fp + fn, 1)
        errors.append(1.0 - f1)
    return float(np.mean(errors)) if errors else 0.0


def burst_height_error(
    imputed: np.ndarray, truth: np.ndarray, threshold: float = 5.0
) -> float:
    """Row e: relative error of the mean burst peak height, per queue."""
    errors = []
    for q in range(truth.shape[0]):
        pred = detect_bursts(imputed[q], threshold)
        actual = detect_bursts(truth[q], threshold)
        if not pred and not actual:
            continue
        pred_height = float(np.mean([b.peak for b in pred])) if pred else 0.0
        true_height = float(np.mean([b.peak for b in actual])) if actual else 0.0
        errors.append(_relative_error(pred_height, true_height))
    return float(np.mean(errors)) if errors else 0.0


def burst_frequency_error(
    imputed: np.ndarray, truth: np.ndarray, threshold: float = 5.0
) -> float:
    """Row f: relative error of the burst count per window, per queue."""
    errors = []
    for q in range(truth.shape[0]):
        pred = len(detect_bursts(imputed[q], threshold))
        actual = len(detect_bursts(truth[q], threshold))
        if pred == 0 and actual == 0:
            continue
        errors.append(_relative_error(pred, actual))
    return float(np.mean(errors)) if errors else 0.0


def burst_interarrival_error(
    imputed: np.ndarray, truth: np.ndarray, threshold: float = 5.0
) -> float:
    """Row g: relative error of the mean inter-arrival gap between bursts."""
    errors = []
    for q in range(truth.shape[0]):
        pred_gaps = interarrival_times(detect_bursts(imputed[q], threshold))
        true_gaps = interarrival_times(detect_bursts(truth[q], threshold))
        if len(pred_gaps) == 0 and len(true_gaps) == 0:
            continue
        pred_mean = float(pred_gaps.mean()) if len(pred_gaps) else 0.0
        true_mean = float(true_gaps.mean()) if len(true_gaps) else 0.0
        errors.append(_relative_error(pred_mean, true_mean))
    return float(np.mean(errors)) if errors else 0.0


def empty_queue_error(
    imputed: np.ndarray, truth: np.ndarray, empty_epsilon: float = 0.5
) -> float:
    """Row h: relative error of the fraction of empty-queue bins."""
    errors = []
    for q in range(truth.shape[0]):
        pred_frac = float((imputed[q] <= empty_epsilon).mean())
        true_frac = float((truth[q] <= empty_epsilon).mean())
        errors.append(_relative_error(pred_frac, true_frac))
    return float(np.mean(errors)) if errors else 0.0


def concurrent_burst_error(
    imputed: np.ndarray, truth: np.ndarray, threshold: float = 5.0
) -> float:
    """Row i: relative error of the mean count of concurrently-bursting queues."""
    pred_concurrent = np.stack(
        [burst_mask(imputed[q], threshold) for q in range(imputed.shape[0])]
    ).sum(axis=0)
    true_concurrent = np.stack(
        [burst_mask(truth[q], threshold) for q in range(truth.shape[0])]
    ).sum(axis=0)
    return _relative_error(float(pred_concurrent.mean()), float(true_concurrent.mean()))


@dataclass
class DownstreamReport:
    """All six downstream errors for one window (or averaged windows)."""

    burst_detection: float
    burst_height: float
    burst_frequency: float
    burst_interarrival: float
    empty_queue: float
    concurrent_bursts: float

    @classmethod
    def average(cls, reports: list["DownstreamReport"]) -> "DownstreamReport":
        """Field-wise mean of several reports."""
        if not reports:
            raise ValueError("cannot average zero reports")
        return cls(
            **{
                f.name: float(np.mean([getattr(r, f.name) for r in reports]))
                for f in fields(cls)
            }
        )


def evaluate_downstream(
    imputed: np.ndarray, truth: np.ndarray, threshold: float = 5.0
) -> DownstreamReport:
    """Compute all Table-1 d–i errors for one imputed window."""
    imputed = np.asarray(imputed, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if imputed.shape != truth.shape:
        raise ValueError(f"shape mismatch: {imputed.shape} vs {truth.shape}")
    return DownstreamReport(
        burst_detection=burst_detection_error(imputed, truth, threshold),
        burst_height=burst_height_error(imputed, truth, threshold),
        burst_frequency=burst_frequency_error(imputed, truth, threshold),
        burst_interarrival=burst_interarrival_error(imputed, truth, threshold),
        empty_queue=empty_queue_error(imputed, truth),
        concurrent_bursts=concurrent_burst_error(imputed, truth, threshold),
    )
