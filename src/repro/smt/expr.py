"""Expression AST for the SMT-lite solver.

Numeric expressions are affine combinations of *bounded* integer or real
variables, optionally containing ``Ite`` (if-then-else) nodes; boolean
expressions combine linear comparisons with And/Or/Not/Implies.  Bounds
are mandatory on variables — the big-M encoding needs finite intervals —
and are propagated through expressions by interval arithmetic.

Python operators are overloaded the obvious way::

    x, y = IntVar("x", 0, 10), IntVar("y", 0, 10)
    formula = And((x + 2 * y <= 7), Or(x >= 1, y >= 1))
"""

from __future__ import annotations

from typing import Iterable, Union

Number = Union[int, float]


# ----------------------------------------------------------------------
# Numeric expressions
# ----------------------------------------------------------------------
class NumExpr:
    """Base class for numeric expressions (affine + Ite)."""

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other) -> "NumExpr":
        return Add([self, _lift_num(other)])

    __radd__ = __add__

    def __neg__(self) -> "NumExpr":
        return Scale(-1.0, self)

    def __sub__(self, other) -> "NumExpr":
        return Add([self, Scale(-1.0, _lift_num(other))])

    def __rsub__(self, other) -> "NumExpr":
        return Add([_lift_num(other), Scale(-1.0, self)])

    def __mul__(self, other) -> "NumExpr":
        if isinstance(other, NumExpr):
            raise TypeError("only linear arithmetic is supported (const * expr)")
        return Scale(float(other), self)

    __rmul__ = __mul__

    # -- comparisons ---------------------------------------------------
    def __le__(self, other) -> "Cmp":
        return Cmp("le", Add([self, Scale(-1.0, _lift_num(other))]))

    def __ge__(self, other) -> "Cmp":
        return Cmp("ge", Add([self, Scale(-1.0, _lift_num(other))]))

    def __lt__(self, other) -> "Cmp":
        return Cmp("lt", Add([self, Scale(-1.0, _lift_num(other))]))

    def __gt__(self, other) -> "Cmp":
        return Cmp("gt", Add([self, Scale(-1.0, _lift_num(other))]))

    def eq(self, other) -> "Cmp":
        """Equality constraint (``==`` is kept for Python identity)."""
        return Cmp("eq", Add([self, Scale(-1.0, _lift_num(other))]))

    # -- bounds ----------------------------------------------------------
    def bounds(self) -> tuple[float, float]:
        """Interval-arithmetic (lo, hi) bounds of this expression."""
        raise NotImplementedError


class Const(NumExpr):
    """A numeric literal."""

    def __init__(self, value: Number):
        self.value = float(value)

    def bounds(self) -> tuple[float, float]:
        return self.value, self.value

    def __repr__(self) -> str:
        return f"Const({self.value})"


class Var(NumExpr):
    """A bounded solver variable (base for IntVar / RealVar)."""

    is_integer = False

    def __init__(self, name: str, lo: Number, hi: Number):
        if lo > hi:
            raise ValueError(f"variable {name}: lo {lo} > hi {hi}")
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)

    def bounds(self) -> tuple[float, float]:
        return self.lo, self.hi

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:  # identity equality; use .eq() for constraints
        return self is other

    def __repr__(self) -> str:
        kind = "Int" if self.is_integer else "Real"
        return f"{kind}Var({self.name!r}, {self.lo}, {self.hi})"


class IntVar(Var):
    """A bounded integer variable."""

    is_integer = True

    def __init__(self, name: str, lo: int, hi: int):
        super().__init__(name, lo, hi)


class RealVar(Var):
    """A bounded real (continuous) variable."""


class Add(NumExpr):
    """Sum of numeric sub-expressions."""

    def __init__(self, terms: Iterable[NumExpr]):
        self.terms = [(_lift_num(t)) for t in terms]

    def bounds(self) -> tuple[float, float]:
        lo = hi = 0.0
        for term in self.terms:
            tlo, thi = term.bounds()
            lo += tlo
            hi += thi
        return lo, hi


class Scale(NumExpr):
    """A constant multiple of a numeric sub-expression."""

    def __init__(self, coeff: float, child: NumExpr):
        self.coeff = float(coeff)
        self.child = _lift_num(child)

    def bounds(self) -> tuple[float, float]:
        lo, hi = self.child.bounds()
        a, b = self.coeff * lo, self.coeff * hi
        return (a, b) if a <= b else (b, a)


class Ite(NumExpr):
    """Numeric if-then-else: ``Ite(cond, then, orelse)``.

    The paper's C3 uses exactly this construct (``ite(q > 0, 1, 0)``); the
    encoder lowers it to a fresh variable with big-M linking constraints.
    """

    def __init__(self, cond: "BoolExpr", then, orelse):
        self.cond = _lift_bool(cond)
        self.then = _lift_num(then)
        self.orelse = _lift_num(orelse)

    def bounds(self) -> tuple[float, float]:
        tlo, thi = self.then.bounds()
        olo, ohi = self.orelse.bounds()
        return min(tlo, olo), max(thi, ohi)


def Sum(terms: Iterable) -> NumExpr:
    """Sum of numeric expressions (empty sum is 0)."""
    terms = [(_lift_num(t)) for t in terms]
    return Add(terms) if terms else Const(0.0)


def _lift_num(value) -> NumExpr:
    if isinstance(value, NumExpr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot use {value!r} as a numeric expression")


# ----------------------------------------------------------------------
# Boolean expressions
# ----------------------------------------------------------------------
class BoolExpr:
    """Base class for boolean expressions."""

    def __and__(self, other) -> "BoolExpr":
        return And(self, _lift_bool(other))

    def __or__(self, other) -> "BoolExpr":
        return Or(self, _lift_bool(other))

    def __invert__(self) -> "BoolExpr":
        return Not(self)


class BoolConst(BoolExpr):
    """A boolean literal."""

    def __init__(self, value: bool):
        self.value = bool(value)


class BoolVar(BoolExpr):
    """A free boolean variable."""

    def __init__(self, name: str):
        self.name = name

    def __hash__(self) -> int:
        return id(self)


class Cmp(BoolExpr):
    """A linear comparison: ``lhs <op> 0`` with op in le/ge/lt/gt/eq."""

    OPS = ("le", "ge", "lt", "gt", "eq")

    def __init__(self, op: str, lhs: NumExpr):
        if op not in self.OPS:
            raise ValueError(f"unknown comparison op {op!r}")
        self.op = op
        self.lhs = lhs


class And(BoolExpr):
    """Conjunction of boolean sub-expressions."""

    def __init__(self, *args):
        self.args = [_lift_bool(a) for a in _flatten(args)]


class Or(BoolExpr):
    """Disjunction of boolean sub-expressions."""

    def __init__(self, *args):
        self.args = [_lift_bool(a) for a in _flatten(args)]


class Not(BoolExpr):
    """Negation of a boolean sub-expression."""

    def __init__(self, arg):
        self.arg = _lift_bool(arg)


def Implies(antecedent, consequent) -> BoolExpr:
    """Material implication ``antecedent → consequent``."""
    return Or(Not(_lift_bool(antecedent)), _lift_bool(consequent))


def _flatten(args) -> list:
    flat: list = []
    for arg in args:
        if isinstance(arg, (list, tuple)):
            flat.extend(arg)
        else:
            flat.append(arg)
    return flat


def _lift_bool(value) -> BoolExpr:
    if isinstance(value, BoolExpr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    raise TypeError(f"cannot use {value!r} as a boolean expression")
