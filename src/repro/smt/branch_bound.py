"""Branch-and-bound MILP solver on top of the LP backends.

Depth-first search branching on the most fractional integer variable,
pruning by LP bound against the incumbent.  Two budgets cap the search so
callers can observe "did not finish" — which is itself a datum this repo
cares about: the FM-only imputation experiment measures exactly where
complete search stops being tractable (§2.3).  ``node_limit`` bounds the
tree; ``deadline`` (a wall-clock :class:`~repro.resilience.budget.Budget`)
bounds elapsed time, giving the solve *anytime* behaviour — when it
expires the best incumbent found so far is returned with
``hit_deadline`` flagged instead of the search hanging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.resilience.budget import Budget
from repro.smt.milp import MilpProblem, MilpResult
from repro.smt.simplex import solve_lp, solve_lp_scipy

_INT_TOL = 1e-6

LpBackend = Callable[..., MilpResult]

_BACKENDS: dict[str, LpBackend] = {
    "native": solve_lp,
    "scipy": solve_lp_scipy,
}


@dataclass
class BranchBoundStats:
    """Search statistics (reported by the scalability benchmarks)."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    incumbent_updates: int = 0
    hit_node_limit: bool = False
    hit_deadline: bool = False

    @property
    def timed_out(self) -> bool:
        """Did either budget (nodes or wall clock) cut the search short?"""
        return self.hit_node_limit or self.hit_deadline


def solve_milp(
    problem: MilpProblem,
    lp_backend: str | LpBackend = "native",
    node_limit: int = 200_000,
    first_feasible: bool = False,
    deadline: Budget | None = None,
) -> tuple[MilpResult, BranchBoundStats]:
    """Solve a MILP by branch and bound.

    Args:
        problem: the MILP (minimisation).
        lp_backend: "native" (from-scratch simplex) or "scipy" (HiGHS) —
            or a callable with the ``solve_lp`` signature (used by the
            fault injectors to simulate a stalled solver).
        node_limit: abort after exploring this many nodes; the result
            status becomes ``"node_limit"`` if no incumbent was found, or
            the incumbent is returned with ``hit_node_limit`` flagged.
        first_feasible: stop at the first integer-feasible solution —
            what an SMT ``check()`` (satisfiability only) needs.
        deadline: wall-clock budget checked before every node; on expiry
            the incumbent (if any) is returned with ``hit_deadline``
            flagged, otherwise the status becomes ``"deadline"``.  The
            check granularity is one LP solve, so overshoot is bounded by
            a single node's cost.
    """
    if callable(lp_backend):
        lp = lp_backend
    elif lp_backend in _BACKENDS:
        lp = _BACKENDS[lp_backend]
    else:
        raise ValueError(f"unknown lp_backend {lp_backend!r}; use one of {list(_BACKENDS)}")
    integer_indices = problem.integer_indices
    stats = BranchBoundStats()

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = np.inf

    # Stack of (lower_overrides, upper_overrides); DFS.
    stack: list[tuple[dict[int, float], dict[int, float]]] = [({}, {})]

    while stack:
        if stats.nodes_explored >= node_limit:
            stats.hit_node_limit = True
            break
        if deadline is not None and deadline.expired():
            stats.hit_deadline = True
            break
        lower, upper = stack.pop()
        stats.nodes_explored += 1

        relaxation = lp(problem, lower_overrides=lower, upper_overrides=upper)
        if relaxation.status == "infeasible":
            stats.nodes_pruned += 1
            continue
        if relaxation.status == "unbounded":
            return MilpResult(status="unbounded"), stats
        if not relaxation.is_optimal:
            # LP trouble at this node: treat as pruned rather than crash.
            stats.nodes_pruned += 1
            continue
        if relaxation.objective is not None and relaxation.objective >= incumbent_obj - 1e-9:
            stats.nodes_pruned += 1
            continue

        x = relaxation.x
        fractional = [
            (abs(x[i] - round(x[i])), i)
            for i in integer_indices
            if abs(x[i] - round(x[i])) > _INT_TOL
        ]
        if not fractional:
            # Integer feasible.
            if relaxation.objective < incumbent_obj:
                incumbent_obj = relaxation.objective
                incumbent_x = np.array(
                    [round(x[i]) if i in set(integer_indices) else x[i] for i in range(len(x))]
                )
                stats.incumbent_updates += 1
                if first_feasible:
                    break
            continue

        # Branch on the most fractional variable.
        _, branch_var = max(fractional)
        value = x[branch_var]
        floor_val = float(np.floor(value))

        up_lower = dict(lower)
        up_lower[branch_var] = max(up_lower.get(branch_var, -np.inf), floor_val + 1.0)
        down_upper = dict(upper)
        down_upper[branch_var] = min(down_upper.get(branch_var, np.inf), floor_val)

        # Push the "down" branch last so it is explored first (DFS heuristic:
        # rounding down tends to be feasible for packet-count models).
        stack.append((up_lower, dict(upper)))
        stack.append((dict(lower), down_upper))

    if incumbent_x is None:
        if stats.hit_node_limit:
            status = "node_limit"
        elif stats.hit_deadline:
            status = "deadline"
        else:
            status = "infeasible"
        return MilpResult(status=status), stats
    return MilpResult(status="optimal", x=incumbent_x, objective=incumbent_obj), stats
