"""Branch-and-bound MILP solver on top of the LP backends.

Depth-first search branching on the most fractional integer variable,
pruning by LP bound against the incumbent.  A node budget caps the search
so callers can observe "did not finish" — which is itself a datum this
repo cares about: the FM-only imputation experiment measures exactly where
complete search stops being tractable (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.smt.milp import MilpProblem, MilpResult
from repro.smt.simplex import solve_lp, solve_lp_scipy

_INT_TOL = 1e-6

LpBackend = Callable[..., MilpResult]

_BACKENDS: dict[str, LpBackend] = {
    "native": solve_lp,
    "scipy": solve_lp_scipy,
}


@dataclass
class BranchBoundStats:
    """Search statistics (reported by the scalability benchmarks)."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    incumbent_updates: int = 0
    hit_node_limit: bool = False


def solve_milp(
    problem: MilpProblem,
    lp_backend: str = "native",
    node_limit: int = 200_000,
    first_feasible: bool = False,
) -> tuple[MilpResult, BranchBoundStats]:
    """Solve a MILP by branch and bound.

    Args:
        problem: the MILP (minimisation).
        lp_backend: "native" (from-scratch simplex) or "scipy" (HiGHS).
        node_limit: abort after exploring this many nodes; the result
            status becomes ``"node_limit"`` if no incumbent was found, or
            the incumbent is returned with ``hit_node_limit`` flagged.
        first_feasible: stop at the first integer-feasible solution —
            what an SMT ``check()`` (satisfiability only) needs.
    """
    if lp_backend not in _BACKENDS:
        raise ValueError(f"unknown lp_backend {lp_backend!r}; use one of {list(_BACKENDS)}")
    lp = _BACKENDS[lp_backend]
    integer_indices = problem.integer_indices
    stats = BranchBoundStats()

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = np.inf

    # Stack of (lower_overrides, upper_overrides); DFS.
    stack: list[tuple[dict[int, float], dict[int, float]]] = [({}, {})]

    while stack:
        if stats.nodes_explored >= node_limit:
            stats.hit_node_limit = True
            break
        lower, upper = stack.pop()
        stats.nodes_explored += 1

        relaxation = lp(problem, lower_overrides=lower, upper_overrides=upper)
        if relaxation.status == "infeasible":
            stats.nodes_pruned += 1
            continue
        if relaxation.status == "unbounded":
            return MilpResult(status="unbounded"), stats
        if not relaxation.is_optimal:
            # LP trouble at this node: treat as pruned rather than crash.
            stats.nodes_pruned += 1
            continue
        if relaxation.objective is not None and relaxation.objective >= incumbent_obj - 1e-9:
            stats.nodes_pruned += 1
            continue

        x = relaxation.x
        fractional = [
            (abs(x[i] - round(x[i])), i)
            for i in integer_indices
            if abs(x[i] - round(x[i])) > _INT_TOL
        ]
        if not fractional:
            # Integer feasible.
            if relaxation.objective < incumbent_obj:
                incumbent_obj = relaxation.objective
                incumbent_x = np.array(
                    [round(x[i]) if i in set(integer_indices) else x[i] for i in range(len(x))]
                )
                stats.incumbent_updates += 1
                if first_feasible:
                    break
            continue

        # Branch on the most fractional variable.
        _, branch_var = max(fractional)
        value = x[branch_var]
        floor_val = float(np.floor(value))

        up_lower = dict(lower)
        up_lower[branch_var] = max(up_lower.get(branch_var, -np.inf), floor_val + 1.0)
        down_upper = dict(upper)
        down_upper[branch_var] = min(down_upper.get(branch_var, np.inf), floor_val)

        # Push the "down" branch last so it is explored first (DFS heuristic:
        # rounding down tends to be feasible for packet-count models).
        stack.append((up_lower, dict(upper)))
        stack.append((dict(lower), down_upper))

    if incumbent_x is None:
        status = "node_limit" if stats.hit_node_limit else "infeasible"
        return MilpResult(status=status), stats
    return MilpResult(status="optimal", x=incumbent_x, objective=incumbent_obj), stats
