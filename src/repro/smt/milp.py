"""Mixed-integer linear program container shared by the solver layers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class Variable:
    """One MILP variable with finite bounds."""

    name: str
    lo: float
    hi: float
    is_integer: bool = False

    def __post_init__(self):
        if not np.isfinite(self.lo) or not np.isfinite(self.hi):
            raise ValueError(f"variable {self.name} must have finite bounds")
        if self.lo > self.hi:
            raise ValueError(f"variable {self.name}: lo {self.lo} > hi {self.hi}")


@dataclass
class LinearConstraint:
    """``sum(coeffs[i] * x_i)  sense  rhs`` with sense in {<=, >=, ==}."""

    coeffs: dict[int, float]
    sense: str
    rhs: float

    SENSES = ("<=", ">=", "==")

    def __post_init__(self):
        if self.sense not in self.SENSES:
            raise ValueError(f"unknown sense {self.sense!r}")


@dataclass
class MilpProblem:
    """A minimisation MILP built incrementally."""

    variables: list[Variable] = field(default_factory=list)
    constraints: list[LinearConstraint] = field(default_factory=list)
    objective: dict[int, float] = field(default_factory=dict)

    def add_variable(
        self, name: str, lo: float, hi: float, is_integer: bool = False
    ) -> int:
        """Add a variable; returns its index."""
        self.variables.append(Variable(name, float(lo), float(hi), is_integer))
        return len(self.variables) - 1

    def add_constraint(self, coeffs: dict[int, float], sense: str, rhs: float) -> None:
        """Add ``sum(coeffs[i] x_i) sense rhs``; zero coefficients dropped."""
        cleaned = {i: float(c) for i, c in coeffs.items() if c != 0.0}
        for i in cleaned:
            if not 0 <= i < len(self.variables):
                raise IndexError(f"constraint references unknown variable {i}")
        self.constraints.append(LinearConstraint(cleaned, sense, float(rhs)))

    def set_objective(self, coeffs: dict[int, float]) -> None:
        """Set the (minimisation) objective."""
        self.objective = {i: float(c) for i, c in coeffs.items() if c != 0.0}

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def integer_indices(self) -> list[int]:
        return [i for i, v in enumerate(self.variables) if v.is_integer]

    def dense(self) -> tuple[np.ndarray, list[np.ndarray], list[str], np.ndarray]:
        """Dense (c, rows, senses, rhs) arrays for the LP backends."""
        n = self.num_variables
        c = np.zeros(n)
        for i, coeff in self.objective.items():
            c[i] = coeff
        rows = []
        senses = []
        rhs = np.zeros(len(self.constraints))
        for k, constraint in enumerate(self.constraints):
            row = np.zeros(n)
            for i, coeff in constraint.coeffs.items():
                row[i] = coeff
            rows.append(row)
            senses.append(constraint.sense)
            rhs[k] = constraint.rhs
        return c, rows, senses, rhs


@dataclass
class MilpResult:
    """Outcome of an LP/MILP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"
