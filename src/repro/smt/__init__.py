"""A small SMT-style solver for quantifier-free linear integer arithmetic.

This package is the repo's stand-in for Z3 (§2.3): it accepts formulas
built from bounded integer/real variables, linear arithmetic, comparisons
and boolean structure (And/Or/Not/Implies/Ite), compiles them to a
mixed-integer linear program via big-M encoding, and solves that with a
from-scratch branch-and-bound over a from-scratch primal simplex
(``scipy.optimize.linprog`` is available as an alternative LP backend and
as a cross-check in the tests).

The design mirrors how an SMT solver is *used* in the paper — ``add``
constraints, ``check`` satisfiability, extract a model, optionally
``minimize`` an objective (for the CEM's minimal-change correction) — and
deliberately exhibits the same scaling behaviour: complete search over
per-time-step integer variables blows up combinatorially with the horizon,
which is exactly the §2.3 result the scalability benchmark reproduces.
"""

from repro.smt.expr import (
    And,
    BoolExpr,
    BoolVar,
    Implies,
    IntVar,
    Ite,
    Not,
    NumExpr,
    Or,
    RealVar,
    Sum,
)
from repro.smt.milp import LinearConstraint, MilpProblem, MilpResult, Variable
from repro.smt.solver import CheckResult, Model, Solver

__all__ = [
    "NumExpr",
    "BoolExpr",
    "IntVar",
    "RealVar",
    "BoolVar",
    "And",
    "Or",
    "Not",
    "Implies",
    "Ite",
    "Sum",
    "Solver",
    "CheckResult",
    "Model",
    "MilpProblem",
    "MilpResult",
    "Variable",
    "LinearConstraint",
]
