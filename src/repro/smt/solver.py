"""Z3-style solver facade over the encoder and branch-and-bound core."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import repro.obs as obs
from repro.resilience.budget import Budget, coerce_budget
from repro.smt.branch_bound import BranchBoundStats, solve_milp
from repro.smt.encode import Encoder
from repro.smt.expr import BoolExpr, NumExpr, Var


@dataclass
class Model:
    """A satisfying assignment for the user's variables."""

    _values: dict[int, float]  # id(Var) -> value
    _vars: dict[int, Var]

    def __getitem__(self, var: Var) -> float:
        try:
            value = self._values[id(var)]
        except KeyError:
            raise KeyError(f"variable {var!r} not present in the model") from None
        return round(value) if var.is_integer else value

    def values(self) -> dict[str, float]:
        """Assignment keyed by variable name (for reporting)."""
        return {v.name: self[v] for v in self._vars.values()}


@dataclass
class CheckResult:
    """Outcome of ``check()`` / ``minimize()``."""

    status: str  # "sat" | "unsat" | "unknown"
    model: Optional[Model] = None
    objective: Optional[float] = None
    solve_time: float = 0.0
    stats: BranchBoundStats = field(default_factory=BranchBoundStats)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def timed_out(self) -> bool:
        """Was the search cut short by its node or wall-clock budget?"""
        return self.stats.timed_out


class Solver:
    """Accumulates assertions; checks satisfiability or minimises.

    Mirrors the slice of the Z3 API the paper's system needs::

        s = Solver()
        s.add(x + y <= 5, Or(x >= 1, y >= 2))
        result = s.check()
        if result.is_sat:
            print(result.model[x])
    """

    def __init__(
        self,
        lp_backend: str = "native",
        node_limit: int = 200_000,
        deadline: "float | Budget | None" = None,
    ):
        self.lp_backend = lp_backend
        self.node_limit = node_limit
        # A float deadline starts a fresh Budget per solve (wall clock
        # measured from the check()/minimize() call); a Budget instance is
        # used as-is so tests can drive expiry with a fake clock.
        self.deadline = deadline
        self._assertions: list[BoolExpr] = []

    def add(self, *formulas: BoolExpr) -> None:
        """Assert one or more formulas."""
        for formula in formulas:
            if not isinstance(formula, BoolExpr):
                raise TypeError(f"can only assert boolean expressions, got {formula!r}")
            self._assertions.append(formula)

    def check(self) -> CheckResult:
        """Is the conjunction of assertions satisfiable?"""
        return self._solve(objective=None, first_feasible=True)

    def minimize(self, objective: NumExpr) -> CheckResult:
        """Find the assignment minimising ``objective`` (must be linear/Ite)."""
        return self._solve(objective=objective, first_feasible=False)

    # ------------------------------------------------------------------
    def _solve(self, objective: Optional[NumExpr], first_feasible: bool) -> CheckResult:
        with obs.span(
            "smt.solve",
            mode="check" if first_feasible else "minimize",
            assertions=len(self._assertions),
        ) as span:
            result = self._solve_inner(objective, first_feasible)
            span.annotate(
                status=result.status,
                nodes=result.stats.nodes_explored,
                timed_out=result.timed_out,
            )
            obs.counter("smt.solves").inc()
            obs.counter("smt.nodes_explored").inc(result.stats.nodes_explored)
            if result.stats.hit_deadline:
                obs.counter("smt.deadline_hits").inc()
            if result.stats.hit_node_limit:
                obs.counter("smt.node_limit_hits").inc()
            return result

    def _solve_inner(
        self, objective: Optional[NumExpr], first_feasible: bool
    ) -> CheckResult:
        encoder = Encoder()
        for formula in self._assertions:
            encoder.assert_formula(formula)
        if objective is not None:
            affine = encoder.encode_num(objective)
            encoder.problem.set_objective(dict(affine.coeffs))

        start = time.perf_counter()
        result, stats = solve_milp(
            encoder.problem,
            lp_backend=self.lp_backend,
            node_limit=self.node_limit,
            first_feasible=first_feasible,
            deadline=coerce_budget(self.deadline),
        )
        elapsed = time.perf_counter() - start

        if result.status == "optimal":
            values = {
                var_id: float(result.x[index])
                for var_id, (_, index) in encoder._var_index.items()
            }
            user_vars = {
                var_id: var
                for var_id, var in _collect_vars(self._assertions, objective).items()
            }
            model = Model(values, user_vars)
            objective_value = result.objective if objective is not None else None
            return CheckResult(
                status="sat",
                model=model,
                objective=objective_value,
                solve_time=elapsed,
                stats=stats,
            )
        if result.status == "infeasible":
            return CheckResult(status="unsat", solve_time=elapsed, stats=stats)
        return CheckResult(status="unknown", solve_time=elapsed, stats=stats)


def _collect_vars(
    formulas: list[BoolExpr], objective: Optional[NumExpr]
) -> dict[int, Var]:
    """Gather every Var reachable from the assertions and objective."""
    from repro.smt.expr import Add, And, Cmp, Ite, Not, Or, Scale

    found: dict[int, Var] = {}

    def walk_num(expr) -> None:
        if isinstance(expr, Var):
            found[id(expr)] = expr
        elif isinstance(expr, Add):
            for term in expr.terms:
                walk_num(term)
        elif isinstance(expr, Scale):
            walk_num(expr.child)
        elif isinstance(expr, Ite):
            walk_bool(expr.cond)
            walk_num(expr.then)
            walk_num(expr.orelse)

    def walk_bool(expr) -> None:
        if isinstance(expr, Cmp):
            walk_num(expr.lhs)
        elif isinstance(expr, (And, Or)):
            for arg in expr.args:
                walk_bool(arg)
        elif isinstance(expr, Not):
            walk_bool(expr.arg)

    for formula in formulas:
        walk_bool(formula)
    if objective is not None:
        walk_num(objective)
    return found
