"""From-scratch dense two-phase primal simplex LP solver.

Solves ``min c·x`` subject to general linear constraints and finite
variable bounds.  Bounded variables are shifted to ``x = lo + u`` with
``u >= 0`` and the upper bounds become explicit rows; inequalities gain
slack/surplus variables; phase 1 introduces artificial variables and
minimises their sum.  Bland's rule guarantees termination (no cycling) at
the cost of speed — acceptable for the problem sizes this repo solves and
deliberately reminiscent of the scaling wall the paper reports for
FM-only imputation.

``solve_lp_scipy`` wraps ``scipy.optimize.linprog`` (HiGHS) with the same
interface; the test suite cross-checks the two.
"""

from __future__ import annotations

import numpy as np

from repro.smt.milp import MilpProblem, MilpResult

_TOL = 1e-9


def _to_standard_form(
    problem: MilpProblem,
    lower_overrides: dict[int, float] | None = None,
    upper_overrides: dict[int, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Build min c·u s.t. A u = b, u >= 0 from the bounded-variable MILP.

    Returns (c, A, b, shift, n_structural) where ``x = shift + u[:n]``
    recovers original variables.  Bound overrides let branch-and-bound
    tighten bounds without copying the problem.
    """
    lower_overrides = lower_overrides or {}
    upper_overrides = upper_overrides or {}
    n = problem.num_variables
    lo = np.array([v.lo for v in problem.variables])
    hi = np.array([v.hi for v in problem.variables])
    for i, value in lower_overrides.items():
        lo[i] = max(lo[i], value)
    for i, value in upper_overrides.items():
        hi[i] = min(hi[i], value)
    if (lo > hi + _TOL).any():
        raise _InfeasibleBounds()

    c_orig, rows, senses, rhs = problem.dense()

    # Shift x = lo + u. Constraint rows: row·x sense rhs → row·u sense rhs - row·lo.
    # Upper bounds become rows u_i <= hi_i - lo_i.
    eq_rows: list[np.ndarray] = []
    eq_rhs: list[float] = []
    num_slacks = sum(1 for s in senses if s != "==") + n  # + upper-bound rows

    total = n + num_slacks
    slack_cursor = n
    a_rows: list[np.ndarray] = []

    for row, sense, b in zip(rows, senses, rhs):
        shifted_rhs = b - row @ lo
        full = np.zeros(total)
        full[:n] = row
        if sense == "<=":
            full[slack_cursor] = 1.0
            slack_cursor += 1
        elif sense == ">=":
            full[slack_cursor] = -1.0
            slack_cursor += 1
        a_rows.append(full)
        eq_rhs.append(shifted_rhs)

    span = hi - lo
    for i in range(n):
        full = np.zeros(total)
        full[i] = 1.0
        full[slack_cursor] = 1.0
        slack_cursor += 1
        a_rows.append(full)
        eq_rhs.append(span[i])

    a = np.array(a_rows) if a_rows else np.zeros((0, total))
    b_vec = np.array(eq_rhs)

    # Normalise to b >= 0 for phase 1.
    negative = b_vec < 0
    a[negative] *= -1
    b_vec[negative] *= -1

    c = np.zeros(total)
    c[:n] = c_orig
    return c, a, b_vec, lo, n


class _InfeasibleBounds(Exception):
    """Branching produced an empty box."""


def _simplex_phase(
    tableau: np.ndarray, basis: np.ndarray, max_iterations: int
) -> str:
    """Run primal simplex with Bland's rule on an augmented tableau.

    ``tableau`` holds [A | b] with the objective row last ([reduced costs |
    -objective]); mutated in place.  Returns "optimal" or
    "iteration_limit".
    """
    m = tableau.shape[0] - 1
    for _ in range(max_iterations):
        cost_row = tableau[-1, :-1]
        entering_candidates = np.nonzero(cost_row < -_TOL)[0]
        if len(entering_candidates) == 0:
            return "optimal"
        entering = int(entering_candidates[0])  # Bland: smallest index

        column = tableau[:m, entering]
        rhs = tableau[:m, -1]
        ratios = np.full(m, np.inf)
        positive = column > _TOL
        ratios[positive] = rhs[positive] / column[positive]
        if not positive.any():
            return "unbounded"
        best = ratios.min()
        # Bland: among ties, leave the row whose basic variable has the
        # smallest index.
        tie_rows = np.nonzero(ratios <= best + _TOL)[0]
        leaving = int(tie_rows[np.argmin(basis[tie_rows])])

        pivot = tableau[leaving, entering]
        tableau[leaving] /= pivot
        for r in range(m + 1):
            if r != leaving and abs(tableau[r, entering]) > _TOL:
                tableau[r] -= tableau[r, entering] * tableau[leaving]
        basis[leaving] = entering
    return "iteration_limit"


def solve_lp(
    problem: MilpProblem,
    lower_overrides: dict[int, float] | None = None,
    upper_overrides: dict[int, float] | None = None,
    max_iterations: int = 20000,
) -> MilpResult:
    """Solve the LP relaxation with the native two-phase simplex."""
    try:
        c, a, b, shift, n = _to_standard_form(problem, lower_overrides, upper_overrides)
    except _InfeasibleBounds:
        return MilpResult(status="infeasible")
    m, total = a.shape

    # Phase 1: minimise sum of artificials.
    art = np.eye(m)
    tableau = np.zeros((m + 1, total + m + 1))
    tableau[:m, :total] = a
    tableau[:m, total : total + m] = art
    tableau[:m, -1] = b
    # Phase-1 objective: sum of artificials, expressed in reduced form.
    tableau[-1, :total] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    basis = np.arange(total, total + m)

    status = _simplex_phase(tableau, basis, max_iterations)
    if status != "optimal":
        return MilpResult(status=status)
    if -tableau[-1, -1] > 1e-6:
        return MilpResult(status="infeasible")

    # Drive leftover artificial variables out of the basis where possible.
    for row in range(m):
        if basis[row] >= total:
            pivot_candidates = np.nonzero(np.abs(tableau[row, :total]) > _TOL)[0]
            if len(pivot_candidates) == 0:
                continue  # redundant row
            entering = int(pivot_candidates[0])
            pivot = tableau[row, entering]
            tableau[row] /= pivot
            for r in range(m + 1):
                if r != row and abs(tableau[r, entering]) > _TOL:
                    tableau[r] -= tableau[r, entering] * tableau[row]
            basis[row] = entering

    # Phase 2: replace objective row, zero out artificial columns.
    tableau[:, total : total + m] = 0.0
    tableau[-1, :] = 0.0
    tableau[-1, :total] = c
    for row in range(m):
        col = basis[row]
        if col < total and abs(tableau[-1, col]) > _TOL:
            tableau[-1] -= tableau[-1, col] * tableau[row]

    status = _simplex_phase(tableau, basis, max_iterations)
    if status == "unbounded":
        return MilpResult(status="unbounded")
    if status != "optimal":
        return MilpResult(status=status)

    solution = np.zeros(total)
    for row in range(m):
        if basis[row] < total:
            solution[basis[row]] = tableau[row, -1]
    x = shift + solution[:n]
    c_orig = np.zeros(n)
    for i, coeff in problem.objective.items():
        c_orig[i] = coeff
    return MilpResult(status="optimal", x=x, objective=float(c_orig @ x))


def solve_lp_scipy(
    problem: MilpProblem,
    lower_overrides: dict[int, float] | None = None,
    upper_overrides: dict[int, float] | None = None,
) -> MilpResult:
    """Solve the LP relaxation with scipy's HiGHS backend (cross-check)."""
    from scipy.optimize import linprog

    lower_overrides = lower_overrides or {}
    upper_overrides = upper_overrides or {}
    n = problem.num_variables
    c, rows, senses, rhs = problem.dense()
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for row, sense, b in zip(rows, senses, rhs):
        if sense == "<=":
            a_ub.append(row)
            b_ub.append(b)
        elif sense == ">=":
            a_ub.append(-row)
            b_ub.append(-b)
        else:
            a_eq.append(row)
            b_eq.append(b)
    bounds = []
    for i, v in enumerate(problem.variables):
        lo = max(v.lo, lower_overrides.get(i, v.lo))
        hi = min(v.hi, upper_overrides.get(i, v.hi))
        if lo > hi:
            return MilpResult(status="infeasible")
        bounds.append((lo, hi))
    result = linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        return MilpResult(status="infeasible")
    if result.status == 3:
        return MilpResult(status="unbounded")
    if not result.success:
        return MilpResult(status="iteration_limit")
    return MilpResult(status="optimal", x=result.x, objective=float(result.fun))
