"""Big-M encoding of the expression AST into a MILP.

Boolean structure is reified Tseitin-style: every boolean sub-expression
gets a binary variable linked in both directions, so formulas can appear
under negation.  Linear comparisons use two-sided big-M constraints whose
constants come from interval arithmetic over the (mandatory) variable
bounds; integral expressions get an exact violation gap of 1, continuous
ones a small epsilon.

Top-level assertions are handled with a polarity shortcut: an asserted
conjunction is split, and asserted comparisons become plain linear rows
with no binaries — this keeps the common "all operational constraints are
conjoined" case small.
"""

from __future__ import annotations

from repro.smt.expr import (
    Add,
    And,
    BoolConst,
    BoolExpr,
    BoolVar,
    Cmp,
    Const,
    Ite,
    Not,
    NumExpr,
    Or,
    Scale,
    Var,
)
from repro.smt.milp import MilpProblem

_REAL_GAP = 1e-6


class Affine:
    """A linear form: coefficient map over MILP variable indices + constant."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: dict[int, float] | None = None, const: float = 0.0):
        self.coeffs = coeffs or {}
        self.const = const

    def add(self, other: "Affine", scale: float = 1.0) -> "Affine":
        coeffs = dict(self.coeffs)
        for i, c in other.coeffs.items():
            coeffs[i] = coeffs.get(i, 0.0) + scale * c
        return Affine(coeffs, self.const + scale * other.const)

    def scaled(self, factor: float) -> "Affine":
        return Affine({i: factor * c for i, c in self.coeffs.items()}, factor * self.const)


class Encoder:
    """Translates formulas into a :class:`MilpProblem`."""

    def __init__(self):
        self.problem = MilpProblem()
        # Caches are keyed by id(); each entry also keeps a strong reference
        # to the expression so a garbage-collected temporary can never hand
        # its id to a new object and cause a stale cache hit.
        self._var_index: dict[int, tuple[Var, int]] = {}
        self._bool_index: dict[int, tuple[BoolExpr, int]] = {}
        self._ite_index: dict[int, tuple[Ite, int]] = {}
        self._fresh = 0

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def var_index(self, var: Var) -> int:
        entry = self._var_index.get(id(var))
        if entry is None:
            index = self.problem.add_variable(var.name, var.lo, var.hi, var.is_integer)
            self._var_index[id(var)] = (var, index)
            return index
        return entry[1]

    def _fresh_binary(self, hint: str) -> int:
        self._fresh += 1
        return self.problem.add_variable(f"__b{self._fresh}_{hint}", 0, 1, is_integer=True)

    # ------------------------------------------------------------------
    # Numeric encoding
    # ------------------------------------------------------------------
    def encode_num(self, expr: NumExpr) -> Affine:
        if isinstance(expr, Const):
            return Affine(const=expr.value)
        if isinstance(expr, Var):
            return Affine({self.var_index(expr): 1.0})
        if isinstance(expr, Add):
            acc = Affine()
            for term in expr.terms:
                acc = acc.add(self.encode_num(term))
            return acc
        if isinstance(expr, Scale):
            return self.encode_num(expr.child).scaled(expr.coeff)
        if isinstance(expr, Ite):
            return Affine({self._encode_ite(expr): 1.0})
        raise TypeError(f"cannot encode numeric expression {expr!r}")

    def _encode_ite(self, expr: Ite) -> int:
        cached = self._ite_index.get(id(expr))
        if cached is not None:
            return cached[1]
        lo, hi = expr.bounds()
        b = self.encode_bool(expr.cond)
        then = self.encode_num(expr.then)
        orelse = self.encode_num(expr.orelse)
        # If both branches are integral, the Ite value is integral in every
        # model; declaring z integer lets comparisons over it keep the exact
        # violation gap of 1 instead of the fragile real epsilon.
        is_int = self._is_integral(then) and self._is_integral(orelse)
        z = self.problem.add_variable(
            f"__ite{len(self._ite_index)}", lo, hi, is_integer=is_int
        )

        # b = 1 → z == then; b = 0 → z == orelse (big-M from bounds).
        for branch, active_when_one in ((then, True), (orelse, False)):
            diff = Affine({z: 1.0}).add(branch, scale=-1.0)
            dlo, dhi = self._affine_bounds(diff)
            # diff <= M * (1 - b)   /   diff <= M * b
            coeffs = dict(diff.coeffs)
            coeffs[b] = coeffs.get(b, 0.0) + (dhi if active_when_one else -dhi)
            rhs = (dhi if active_when_one else 0.0) - diff.const
            self.problem.add_constraint(coeffs, "<=", rhs)
            # diff >= m * (1 - b)   /   diff >= m * b
            coeffs = dict(diff.coeffs)
            coeffs[b] = coeffs.get(b, 0.0) + (dlo if active_when_one else -dlo)
            rhs = (dlo if active_when_one else 0.0) - diff.const
            self.problem.add_constraint(coeffs, ">=", rhs)
        self._ite_index[id(expr)] = (expr, z)
        return z

    def _affine_bounds(self, affine: Affine) -> tuple[float, float]:
        lo = hi = affine.const
        for i, c in affine.coeffs.items():
            v = self.problem.variables[i]
            a, b = c * v.lo, c * v.hi
            lo += min(a, b)
            hi += max(a, b)
        return lo, hi

    def _is_integral(self, affine: Affine) -> bool:
        if abs(affine.const - round(affine.const)) > 1e-12:
            return False
        for i, c in affine.coeffs.items():
            if abs(c - round(c)) > 1e-12 or not self.problem.variables[i].is_integer:
                return False
        return True

    # ------------------------------------------------------------------
    # Boolean encoding (reified)
    # ------------------------------------------------------------------
    def encode_bool(self, expr: BoolExpr) -> int:
        cached = self._bool_index.get(id(expr))
        if cached is not None:
            return cached[1]
        index = self._encode_bool_fresh(expr)
        self._bool_index[id(expr)] = (expr, index)
        return index

    def _encode_bool_fresh(self, expr: BoolExpr) -> int:
        if isinstance(expr, BoolConst):
            b = self._fresh_binary("const")
            self.problem.add_constraint({b: 1.0}, "==", 1.0 if expr.value else 0.0)
            return b
        if isinstance(expr, BoolVar):
            return self._fresh_binary(f"var_{expr.name}")
        if isinstance(expr, Not):
            child = self.encode_bool(expr.arg)
            b = self._fresh_binary("not")
            self.problem.add_constraint({b: 1.0, child: 1.0}, "==", 1.0)
            return b
        if isinstance(expr, And):
            children = [self.encode_bool(a) for a in expr.args]
            b = self._fresh_binary("and")
            for child in children:
                self.problem.add_constraint({b: 1.0, child: -1.0}, "<=", 0.0)
            coeffs = {c: -1.0 for c in children}
            coeffs[b] = coeffs.get(b, 0.0) + 1.0
            self.problem.add_constraint(coeffs, ">=", 1.0 - len(children))
            return b
        if isinstance(expr, Or):
            children = [self.encode_bool(a) for a in expr.args]
            b = self._fresh_binary("or")
            for child in children:
                self.problem.add_constraint({b: 1.0, child: -1.0}, ">=", 0.0)
            coeffs = {c: -1.0 for c in children}
            coeffs[b] = coeffs.get(b, 0.0) + 1.0
            self.problem.add_constraint(coeffs, "<=", 0.0)
            return b
        if isinstance(expr, Cmp):
            return self._encode_cmp(expr)
        raise TypeError(f"cannot encode boolean expression {expr!r}")

    def _encode_cmp(self, expr: Cmp) -> int:
        # Canonicalise: eq → And(le, ge); lt → Not(ge); gt → Not(le).
        if expr.op == "eq":
            return self.encode_bool(And(Cmp("le", expr.lhs), Cmp("ge", expr.lhs)))
        if expr.op == "lt":
            return self.encode_bool(Not(Cmp("ge", expr.lhs)))
        if expr.op == "gt":
            return self.encode_bool(Not(Cmp("le", expr.lhs)))

        affine = self.encode_num(expr.lhs)
        lo, hi = self._affine_bounds(affine)
        gap = 1.0 if self._is_integral(affine) else _REAL_GAP
        b = self._fresh_binary(expr.op)

        if expr.op == "le":
            # b=1 → a <= 0:   a <= hi (1 - b)
            coeffs = dict(affine.coeffs)
            coeffs[b] = coeffs.get(b, 0.0) + hi
            self.problem.add_constraint(coeffs, "<=", hi - affine.const)
            # b=0 → a >= gap: a >= lo b + gap (1 - b) = gap + (lo - gap) b
            coeffs = dict(affine.coeffs)
            coeffs[b] = coeffs.get(b, 0.0) - (lo - gap)
            self.problem.add_constraint(coeffs, ">=", gap - affine.const)
        else:  # ge
            # b=1 → a >= 0:   a >= lo (1 - b)
            coeffs = dict(affine.coeffs)
            coeffs[b] = coeffs.get(b, 0.0) + lo
            self.problem.add_constraint(coeffs, ">=", lo - affine.const)
            # b=0 → a <= -gap: a <= hi b - gap (1 - b)
            coeffs = dict(affine.coeffs)
            coeffs[b] = coeffs.get(b, 0.0) - (hi + gap)
            self.problem.add_constraint(coeffs, "<=", -gap - affine.const)
        return b

    # ------------------------------------------------------------------
    # Top-level assertion (polarity shortcut)
    # ------------------------------------------------------------------
    def assert_formula(self, expr: BoolExpr) -> None:
        if isinstance(expr, BoolConst):
            if not expr.value:
                # Assert an unsatisfiable row.
                self.problem.add_constraint({}, ">=", 1.0)
            return
        if isinstance(expr, And):
            for arg in expr.args:
                self.assert_formula(arg)
            return
        if isinstance(expr, Cmp) and expr.op in ("le", "ge", "eq"):
            affine = self.encode_num(expr.lhs)
            sense = {"le": "<=", "ge": ">=", "eq": "=="}[expr.op]
            self.problem.add_constraint(dict(affine.coeffs), sense, -affine.const)
            return
        b = self.encode_bool(expr)
        self.problem.add_constraint({b: 1.0}, "==", 1.0)
