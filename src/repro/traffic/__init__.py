"""Traffic generation for the switch simulator.

The paper's evaluation (§4) drives ns-3 with the scenario of ABM
[Addanki et al., SIGCOMM '22]: a datacenter mix of *websearch* background
traffic (Poisson flow arrivals with the heavy-tailed DCTCP websearch flow
sizes) and periodic *incast* (synchronised many-to-one bursts).  This
package reproduces those workloads at packet-time-step granularity:

* :class:`~repro.traffic.distributions.WebsearchSizes` — the piecewise
  DCTCP websearch flow-size CDF;
* :class:`~repro.traffic.generators.PoissonFlowTraffic` — open-loop flow
  arrivals paced at source line rate;
* :class:`~repro.traffic.generators.IncastTraffic` — N-to-1 synchronised
  bursts with configurable fan-in, period and jitter;
* :class:`~repro.traffic.generators.CompositeTraffic` — superposition,
  with per-step source-capacity enforcement (a source port cannot inject
  more than one packet per time step — the paper's "traffic rate
  originating from a port could not surpass its capacity" rule).
"""

from repro.traffic.distributions import (
    FixedSizes,
    FlowSizeDistribution,
    ParetoSizes,
    WebsearchSizes,
)
from repro.traffic.generators import (
    CompositeTraffic,
    IncastTraffic,
    PoissonFlowTraffic,
    ScriptedTraffic,
    TrafficGenerator,
)
from repro.traffic.extra import OnOffTraffic, ReplayTraffic
from repro.traffic.flows import FlowTrafficConfig, FlowTrafficGenerator

__all__ = [
    "FlowSizeDistribution",
    "WebsearchSizes",
    "ParetoSizes",
    "FixedSizes",
    "TrafficGenerator",
    "PoissonFlowTraffic",
    "IncastTraffic",
    "CompositeTraffic",
    "ScriptedTraffic",
    "OnOffTraffic",
    "ReplayTraffic",
    "FlowTrafficConfig",
    "FlowTrafficGenerator",
]
