"""Flow-level traffic: sampled flows with RTT-derived pacing.

The packet-level generators (:mod:`repro.traffic.generators`) model
sources as line-rate NICs — a flow occupies its source and emits one
packet every step.  The flow-level mode here abstracts the source away:
a flow is sampled with a size *and an RTT*, and its packets are paced at
``cwnd`` packets per RTT (an open-loop stand-in for a congestion window
in steady state).  One config then spans orders of magnitude in scale —
long-RTT flows trickle, short-RTT flows behave like the line-rate pool —
which is what the m4 line of work motivates for scenario generation.

:class:`FlowTrafficGenerator` keeps the repo's two iron rules:

* **determinism** — every run is a pure function of the config and seed;
* **batch parity** — :meth:`arrivals_batch` is bit-identical to the
  per-step path (same packets, same within-step order, same RNG
  consumption), so the array engine and the fabric feed can batch it.
  The Poisson flow-arrival draws reuse the checkpoint/rewind scheme of
  :class:`~repro.traffic.generators.PoissonFlowTraffic`; per-flow packet
  times are a deterministic arithmetic progression, so batching them is
  exact by construction.

Within a step, packets are emitted in flow creation order (older flows
first) — the rule both paths implement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.switchsim.packet import Packet
from repro.traffic.distributions import (
    FixedSizes,
    FlowSizeDistribution,
    ParetoSizes,
    WebsearchSizes,
)
from repro.traffic.generators import ArrivalArrays, TrafficGenerator, _SequentialMixin
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["FlowTrafficConfig", "FlowTrafficGenerator"]


@dataclass(frozen=True)
class FlowTrafficConfig:
    """Schema-facing description of a flow-level workload (TOML-ready).

    ``size_dist`` selects the flow-size law: ``"websearch"`` (the DCTCP
    CDF, scaled by ``websearch_scale``), ``"pareto"``, or ``"fixed"``.
    RTTs are uniform integers in ``[min_rtt_steps, max_rtt_steps]``; a
    flow emits ``cwnd`` packets per RTT, i.e. one packet every
    ``max(1, rtt // cwnd)`` steps.  ``class_weights`` gives the queue-
    class sampling weights (its length is the number of classes).
    """

    flows_per_step: float = 0.02
    num_ports: int = 2
    size_dist: str = "websearch"
    websearch_scale: float = 1.0
    fixed_size: int = 20
    pareto_shape: float = 1.2
    pareto_max: int = 1000
    min_rtt_steps: int = 4
    max_rtt_steps: int = 32
    cwnd: int = 4
    class_weights: tuple[float, ...] = (0.5, 0.5)

    def __post_init__(self):
        if self.flows_per_step < 0:
            raise ValueError(
                f"flows_per_step must be >= 0, got {self.flows_per_step}"
            )
        check_positive("num_ports", self.num_ports)
        if self.size_dist not in ("websearch", "pareto", "fixed"):
            raise ValueError(
                f'size_dist must be "websearch", "pareto", or "fixed", '
                f"got {self.size_dist!r}"
            )
        check_positive("fixed_size", self.fixed_size)
        check_positive("min_rtt_steps", self.min_rtt_steps)
        check_positive("cwnd", self.cwnd)
        if self.max_rtt_steps < self.min_rtt_steps:
            raise ValueError(
                f"need min_rtt_steps <= max_rtt_steps, got "
                f"{self.min_rtt_steps} > {self.max_rtt_steps}"
            )
        if not self.class_weights or any(w < 0 for w in self.class_weights):
            raise ValueError(f"invalid class_weights: {self.class_weights}")
        if sum(self.class_weights) == 0:
            raise ValueError("class_weights must not sum to zero")

    def size_distribution(self) -> FlowSizeDistribution:
        if self.size_dist == "websearch":
            return WebsearchSizes(self.websearch_scale)
        if self.size_dist == "pareto":
            return ParetoSizes(shape=self.pareto_shape, maximum=self.pareto_max)
        return FixedSizes(self.fixed_size)


@dataclass
class _PacedFlow:
    """A flow mid-transmission: next emission step, gap, packets left."""

    flow_id: int
    dst_port: int
    qclass: int
    next_step: int
    gap: int
    remaining: int


class FlowTrafficGenerator(_SequentialMixin, TrafficGenerator):
    """Open-loop flow-level arrivals paced by sampled RTTs.

    Flows arrive as a Poisson process (``flows_per_step`` expected per
    step).  Each draws, in canonical RNG order: destination port, queue
    class, size, RTT.  Its packets then arrive deterministically every
    ``max(1, rtt // cwnd)`` steps starting at the flow's arrival step —
    there is no source pool; flow-level mode is open-loop by design.
    """

    def __init__(self, config: FlowTrafficConfig, seed: RngLike = None):
        self.config = config
        self.sizes = config.size_distribution()
        weights = np.asarray(config.class_weights, dtype=float)
        self._class_probs = weights / weights.sum()
        self._rng = as_generator(seed)
        self._flow_counter = 0
        self._active: list[_PacedFlow] = []

    def can_batch(self) -> bool:
        return True

    def rng_streams(self) -> tuple[np.random.Generator, ...]:
        return (self._rng,)

    def _draw_flow(self, step: int) -> _PacedFlow:
        """Sample one flow's attributes in the canonical RNG call order."""
        cfg = self.config
        rng = self._rng
        dst = int(rng.integers(cfg.num_ports))
        qclass = int(rng.choice(len(self._class_probs), p=self._class_probs))
        size = self.sizes.sample(rng)
        rtt = int(rng.integers(cfg.min_rtt_steps, cfg.max_rtt_steps + 1))
        gap = max(1, rtt // cfg.cwnd)
        flow = _PacedFlow(self._flow_counter, dst, qclass, step, gap, size)
        self._flow_counter += 1
        return flow

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        num_new = self._rng.poisson(self.config.flows_per_step)
        for _ in range(num_new):
            self._active.append(self._draw_flow(step))
        packets: list[Packet] = []
        still_active: list[_PacedFlow] = []
        for flow in self._active:
            if flow.next_step == step:
                packets.append(
                    Packet(
                        dst_port=flow.dst_port,
                        qclass=flow.qclass,
                        flow_id=flow.flow_id,
                        arrival_step=step,
                    )
                )
                flow.remaining -= 1
                flow.next_step = step + flow.gap
            if flow.remaining > 0:
                still_active.append(flow)
        self._active = still_active
        return packets

    def arrivals_batch(self, start_step: int, num_steps: int) -> ArrivalArrays:
        end = self._check_batch(start_step, num_steps)
        rng = self._rng
        bit_generator = rng.bit_generator
        lam = self.config.flows_per_step
        # New flows of the span, via the same checkpoint/rewind Poisson
        # batching as PoissonFlowTraffic (identical RNG stream).
        step = start_step
        while step < end:
            chunk = min(4096, end - step)
            checkpoint = bit_generator.state
            counts = rng.poisson(lam, chunk)
            nonzero = np.nonzero(counts)[0]
            if nonzero.size == 0:
                step += chunk
                continue
            j = int(nonzero[0])
            if j + 1 < chunk:
                bit_generator.state = checkpoint
                rng.poisson(lam, j + 1)  # identical prefix, exact state advance
            flow_step = step + j
            for _ in range(int(counts[j])):
                self._active.append(self._draw_flow(flow_step))
            step = flow_step + 1
        # Every flow (pre-existing and new, in creation order) contributes
        # an arithmetic progression of steps clipped to the span; a stable
        # sort by step then reproduces the per-step emission order.
        step_parts: list[np.ndarray] = []
        dsts: list[int] = []
        qclasses: list[int] = []
        counts_per_flow: list[int] = []
        still_active: list[_PacedFlow] = []
        for flow in self._active:
            if flow.next_step < end and flow.remaining > 0:
                emitted = min(
                    flow.remaining,
                    (end - flow.next_step + flow.gap - 1) // flow.gap,
                )
                stop = flow.next_step + emitted * flow.gap
                step_parts.append(
                    np.arange(flow.next_step, stop, flow.gap, dtype=np.int64)
                )
                dsts.append(flow.dst_port)
                qclasses.append(flow.qclass)
                counts_per_flow.append(emitted)
                flow.remaining -= emitted
                flow.next_step = stop
            if flow.remaining > 0:
                still_active.append(flow)
        self._active = still_active
        if not step_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        steps = np.concatenate(step_parts)
        dst_arr = np.repeat(np.asarray(dsts, dtype=np.int64), counts_per_flow)
        qclass_arr = np.repeat(np.asarray(qclasses, dtype=np.int64), counts_per_flow)
        # Stable: progressions are concatenated in flow creation order, so
        # equal steps keep older-flow-first order, matching arrivals().
        order = np.argsort(steps, kind="stable")
        return steps[order], dst_arr[order], qclass_arr[order]
