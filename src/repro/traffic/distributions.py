"""Flow-size distributions, including the DCTCP websearch workload.

Flow sizes are measured in packets.  The websearch CDF is the standard
piecewise-linear fit used across the datacenter literature (DCTCP,
Alizadeh et al. 2010), scaled from bytes to packets assuming 1 kB packets;
it is heavy-tailed: most flows are mice, most bytes come from elephants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import as_generator


class FlowSizeDistribution(ABC):
    """Samples flow sizes in packets."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one flow size (>= 1 packet)."""

    def mean(self) -> float:
        """Monte-Carlo estimate of the mean flow size (used for load calc)."""
        rng = as_generator(12345)
        return float(np.mean([self.sample(rng) for _ in range(20000)]))


class FixedSizes(FlowSizeDistribution):
    """Every flow has the same size — useful for deterministic tests."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"flow size must be >= 1 packet, got {size}")
        self.size = int(size)

    def sample(self, rng: np.random.Generator) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)


class ParetoSizes(FlowSizeDistribution):
    """Bounded Pareto flow sizes — a generic heavy-tailed workload."""

    def __init__(self, shape: float = 1.2, minimum: int = 1, maximum: int = 1000):
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        if not 1 <= minimum <= maximum:
            raise ValueError(f"need 1 <= minimum <= maximum, got {minimum}, {maximum}")
        self.shape = shape
        self.minimum = minimum
        self.maximum = maximum

    def sample(self, rng: np.random.Generator) -> int:
        # Inverse-CDF sampling of a bounded Pareto.
        u = rng.random()
        lo, hi, a = float(self.minimum), float(self.maximum), self.shape
        x = (lo**a / (1.0 - u * (1.0 - (lo / hi) ** a))) ** (1.0 / a)
        return int(np.clip(round(x), self.minimum, self.maximum))


class WebsearchSizes(FlowSizeDistribution):
    """DCTCP websearch flow-size distribution (piecewise-linear CDF).

    Points are (flow size in packets, cumulative probability), the classic
    websearch workload: ~50 % of flows under 10 packets but a tail out to
    tens of thousands of packets carrying most bytes.
    """

    # (size_packets, cdf) — interpolated log-linearly between knots.
    _KNOTS: tuple[tuple[float, float], ...] = (
        (1, 0.00),
        (2, 0.15),
        (3, 0.30),
        (5, 0.40),
        (7, 0.50),
        (10, 0.60),
        (30, 0.70),
        (100, 0.80),
        (300, 0.90),
        (1000, 0.95),
        (3000, 0.98),
        (10000, 1.00),
    )

    def __init__(self, scale: float = 1.0):
        """``scale`` multiplies all sizes (e.g. 0.1 for a lighter variant)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self._sizes = np.array([k[0] for k in self._KNOTS], dtype=float)
        self._cdf = np.array([k[1] for k in self._KNOTS], dtype=float)

    def sample(self, rng: np.random.Generator) -> int:
        u = rng.random()
        # Interpolate in log-size space for a smooth heavy tail.
        log_size = np.interp(u, self._cdf, np.log(self._sizes))
        size = int(round(np.exp(log_size) * self.scale))
        return max(1, size)
