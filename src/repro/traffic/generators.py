"""Traffic generators producing per-time-step packet arrivals.

All generators share the same contract: :meth:`TrafficGenerator.arrivals`
is called once per simulator time step with a monotonically increasing
step index and returns the packets arriving at the switch in that step.

Sources model server NICs: each source can inject **at most one packet per
time step** (line rate), so a flow of S packets occupies its source for at
least S steps and fan-in of k sources onto one output port grows that
port's queue at rate ~(k-1) packets per step — the queue-building mechanism
the paper's imputation problem revolves around.

Batched materialisation
-----------------------

The vectorized switch engine (:mod:`repro.switchsim.engine`) consumes
arrivals thousands of steps at a time.  Generators that can produce their
packet stream as flat numpy arrays implement :meth:`TrafficGenerator.
arrivals_batch`, which must be **bit-identical** to the per-step path:
same packets, same within-step ordering, and — crucially — the same
underlying RNG draw sequence, so that mixing batch and per-step calls (or
comparing the two engines) yields identical traces.  Generators advertise
the capability via :meth:`TrafficGenerator.can_batch`; callers must check
it before calling ``arrivals_batch`` because a batch call mutates
generator state irreversibly.

For :class:`PoissonFlowTraffic` the per-step Poisson arrival draws are
batched with a checkpoint/rewind scheme on the bit generator: numpy's
``Generator.poisson(lam, size=n)`` consumes the bit stream exactly like
``n`` sequential scalar draws (element-wise fill), so a chunk can be drawn
at once and, when a non-zero count appears at position ``j``, the state is
rewound and re-advanced by exactly ``j + 1`` draws before the per-flow
attribute draws are interleaved — reproducing the scalar call sequence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.switchsim.packet import Packet
from repro.traffic.distributions import FlowSizeDistribution, WebsearchSizes
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class _ActiveFlow:
    """A flow currently transmitting from a source."""

    flow_id: int
    dst_port: int
    qclass: int
    remaining: int


class _SourcePool:
    """Per-source flow queues with 1-packet-per-step pacing.

    Flows injected into a source are serialised FIFO: the source transmits
    the head flow's packets back to back, then moves to the next flow.
    """

    def __init__(self, num_sources: int):
        check_positive("num_sources", num_sources)
        self.num_sources = int(num_sources)
        self._queues: list[deque[_ActiveFlow]] = [deque() for _ in range(self.num_sources)]

    def inject(self, source: int, flow: _ActiveFlow) -> None:
        if not 0 <= source < self.num_sources:
            raise IndexError(f"source {source} out of range [0, {self.num_sources})")
        if flow.remaining < 1:
            raise ValueError(f"flow must have >= 1 packet, got {flow.remaining}")
        self._queues[source].append(flow)

    def emit(self, step: int) -> list[Packet]:
        """Emit at most one packet per busy source for this step."""
        packets: list[Packet] = []
        for queue in self._queues:
            if not queue:
                continue
            flow = queue[0]
            packets.append(
                Packet(
                    dst_port=flow.dst_port,
                    qclass=flow.qclass,
                    flow_id=flow.flow_id,
                    arrival_step=step,
                )
            )
            flow.remaining -= 1
            if flow.remaining == 0:
                queue.popleft()
        return packets

    @property
    def busy_sources(self) -> int:
        return sum(1 for q in self._queues if q)

    @property
    def backlog_packets(self) -> int:
        return sum(f.remaining for q in self._queues for f in q)

    def emit_batch(
        self,
        start: int,
        end: int,
        injections: Sequence[tuple[int, int, _ActiveFlow]],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Emit all packets of steps ``[start, end)`` as flat arrays.

        ``injections`` lists ``(step, source, flow)`` in injection order
        (steps non-decreasing per source).  Equivalent to calling
        :meth:`inject` at each flow's step followed by :meth:`emit` once
        per step, but runs in time proportional to the number of *flows*
        plus emitted packets rather than steps × sources.

        Returns ``(steps, dst_ports, qclasses)`` sorted by step with the
        same within-step ordering as :meth:`emit` (ascending source).
        """
        per_source: list[list[tuple[int, _ActiveFlow]]] = [
            [] for _ in range(self.num_sources)
        ]
        for step, source, flow in injections:
            if not 0 <= source < self.num_sources:
                raise IndexError(
                    f"source {source} out of range [0, {self.num_sources})"
                )
            if flow.remaining < 1:
                raise ValueError(f"flow must have >= 1 packet, got {flow.remaining}")
            per_source[source].append((step, flow))

        step_parts: list[np.ndarray] = []
        dsts: list[int] = []
        qclasses: list[int] = []
        counts: list[int] = []
        for source, queue in enumerate(self._queues):
            # A busy source emits continuously; a flow starts at its
            # injection step or when the previous flow finishes, whichever
            # is later (inject() precedes emit() within a step).
            cursor = start
            pending: deque[_ActiveFlow] = deque()
            for avail, flow in [(start, f) for f in queue] + per_source[source]:
                begin = max(cursor, avail)
                cursor = begin + flow.remaining
                emit_end = min(cursor, end)
                if begin < emit_end:
                    step_parts.append(np.arange(begin, emit_end, dtype=np.int64))
                    dsts.append(flow.dst_port)
                    qclasses.append(flow.qclass)
                    counts.append(emit_end - begin)
                    flow.remaining = cursor - emit_end
                if flow.remaining > 0:
                    pending.append(flow)
            self._queues[source] = pending

        if not step_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        steps = np.concatenate(step_parts)
        dst_arr = np.repeat(np.asarray(dsts, dtype=np.int64), counts)
        qclass_arr = np.repeat(np.asarray(qclasses, dtype=np.int64), counts)
        # Stable sort: runs are concatenated grouped by source, so ties on
        # the step key keep ascending-source order, matching emit().
        order = np.argsort(steps, kind="stable")
        return steps[order], dst_arr[order], qclass_arr[order]


#: Flat arrival arrays ``(steps, dst_ports, qclasses)``, sorted by step
#: (stable within a step, preserving the per-step packet ordering).
ArrivalArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


class TrafficGenerator(ABC):
    """Produces the packets arriving at the switch at each time step."""

    @abstractmethod
    def arrivals(self, step: int) -> list[Packet]:
        """Packets arriving at time step ``step``.

        Steps must be requested in increasing order (generators are
        stateful stream processes, like the sources they model).
        """

    def can_batch(self) -> bool:
        """Whether :meth:`arrivals_batch` is available for this generator."""
        return False

    def arrivals_batch(self, start_step: int, num_steps: int) -> ArrivalArrays:
        """All arrivals of steps ``[start_step, start_step + num_steps)``.

        Bit-identical to ``num_steps`` consecutive :meth:`arrivals` calls
        (same packets, same within-step order, same RNG consumption); the
        implied per-packet ``arrival_step`` equals its step.  Callers must
        check :meth:`can_batch` first — the call advances generator state.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot batch arrivals")

    def rng_streams(self) -> tuple[np.random.Generator, ...]:
        """The RNG objects this generator draws from (for sharing checks)."""
        return ()


class _SequentialMixin:
    """Guards against out-of-order step queries."""

    _next_step: int = 0

    def _check_step(self, step: int) -> None:
        if step != self._next_step:
            raise ValueError(
                f"arrivals() must be called with consecutive steps; expected "
                f"{self._next_step}, got {step}"
            )
        self._next_step = step + 1

    def _check_batch(self, start_step: int, num_steps: int) -> int:
        """Validate a batch request and advance the cursor; returns end."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        if start_step != self._next_step:
            raise ValueError(
                f"arrivals_batch() must continue from step {self._next_step}, "
                f"got {start_step}"
            )
        self._next_step = start_step + num_steps
        return start_step + num_steps


_EMPTY_BATCH: ArrivalArrays = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
)


class PoissonFlowTraffic(_SequentialMixin, TrafficGenerator):
    """Open-loop Poisson flow arrivals (the websearch background traffic).

    Flows arrive as a Poisson process with ``flows_per_step`` expected
    arrivals per time step; each picks a uniform source, a uniform
    destination output port, a queue class from ``class_weights``, and a
    size from ``sizes`` (DCTCP websearch by default).
    """

    def __init__(
        self,
        num_sources: int,
        num_ports: int,
        flows_per_step: float,
        sizes: FlowSizeDistribution | None = None,
        class_weights: Sequence[float] = (0.5, 0.5),
        seed: RngLike = None,
    ):
        check_positive("num_ports", num_ports)
        if flows_per_step < 0:
            raise ValueError(f"flows_per_step must be >= 0, got {flows_per_step}")
        self._pool = _SourcePool(num_sources)
        self.num_ports = int(num_ports)
        self.flows_per_step = float(flows_per_step)
        self.sizes = sizes if sizes is not None else WebsearchSizes()
        weights = np.asarray(class_weights, dtype=float)
        if weights.ndim != 1 or (weights < 0).any() or weights.sum() == 0:
            raise ValueError(f"invalid class_weights: {class_weights}")
        self._class_probs = weights / weights.sum()
        self._rng = as_generator(seed)
        self._flow_counter = 0

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        num_new = self._rng.poisson(self.flows_per_step)
        for _ in range(num_new):
            source, flow = self._draw_flow()
            self._pool.inject(source, flow)
        return self._pool.emit(step)

    def _draw_flow(self) -> tuple[int, _ActiveFlow]:
        """Draw one flow's attributes in the canonical RNG call order."""
        source = int(self._rng.integers(self._pool.num_sources))
        dst = int(self._rng.integers(self.num_ports))
        qclass = int(self._rng.choice(len(self._class_probs), p=self._class_probs))
        size = self.sizes.sample(self._rng)
        flow = _ActiveFlow(self._flow_counter, dst, qclass, size)
        self._flow_counter += 1
        return source, flow

    def can_batch(self) -> bool:
        return True

    def rng_streams(self) -> tuple[np.random.Generator, ...]:
        return (self._rng,)

    def arrivals_batch(self, start_step: int, num_steps: int) -> ArrivalArrays:
        end = self._check_batch(start_step, num_steps)
        rng = self._rng
        bit_generator = rng.bit_generator
        lam = self.flows_per_step
        injections: list[tuple[int, int, _ActiveFlow]] = []
        step = start_step
        while step < end:
            chunk = min(4096, end - step)
            # Checkpoint/rewind batching of the per-step Poisson draws: an
            # array draw consumes the bit stream like sequential scalars,
            # so when a non-zero count lands at offset j we rewind and
            # re-advance by exactly j + 1 draws before interleaving the
            # per-flow attribute draws, like the per-step path does.
            checkpoint = bit_generator.state
            counts = rng.poisson(lam, chunk)
            nonzero = np.nonzero(counts)[0]
            if nonzero.size == 0:
                step += chunk
                continue
            j = int(nonzero[0])
            if j + 1 < chunk:
                bit_generator.state = checkpoint
                rng.poisson(lam, j + 1)  # identical prefix, exact state advance
            flow_step = step + j
            for _ in range(int(counts[j])):
                source, flow = self._draw_flow()
                injections.append((flow_step, source, flow))
            step = flow_step + 1
        return self._pool.emit_batch(start_step, end, injections)


class IncastTraffic(_SequentialMixin, TrafficGenerator):
    """Periodic synchronised N-to-1 bursts (the incast workload).

    Every ``period`` steps (plus uniform jitter up to ``jitter``), ``fan_in``
    dedicated sources each start a flow of ``burst_size`` packets to the
    same destination port.  With per-source pacing of 1 packet/step, the
    victim port receives ``fan_in`` packets per step while draining one —
    the classic microburst.
    """

    def __init__(
        self,
        fan_in: int,
        burst_size: int,
        period: int,
        dst_port: int,
        qclass: int = 1,
        jitter: int = 0,
        seed: RngLike = None,
        start_step: int = 0,
    ):
        check_positive("fan_in", fan_in)
        check_positive("burst_size", burst_size)
        check_positive("period", period)
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self._pool = _SourcePool(fan_in)
        self.fan_in = int(fan_in)
        self.burst_size = int(burst_size)
        self.period = int(period)
        self.dst_port = int(dst_port)
        self.qclass = int(qclass)
        self.jitter = int(jitter)
        self._rng = as_generator(seed)
        self._flow_counter = 0
        self._next_burst = int(start_step)
        if jitter:
            self._next_burst += int(self._rng.integers(0, jitter + 1))

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        if step == self._next_burst:
            for source in range(self.fan_in):
                self._pool.inject(
                    source,
                    _ActiveFlow(
                        self._flow_counter, self.dst_port, self.qclass, self.burst_size
                    ),
                )
                self._flow_counter += 1
            self._advance_burst(step)
        return self._pool.emit(step)

    def _advance_burst(self, step: int) -> None:
        """Schedule the next burst (drawing jitter with the canonical calls)."""
        self._next_burst += self.period
        if self.jitter:
            self._next_burst += int(self._rng.integers(-self.jitter, self.jitter + 1))
            self._next_burst = max(self._next_burst, step + 1)

    def can_batch(self) -> bool:
        return True

    def rng_streams(self) -> tuple[np.random.Generator, ...]:
        return (self._rng,) if self.jitter else ()

    def arrivals_batch(self, start_step: int, num_steps: int) -> ArrivalArrays:
        end = self._check_batch(start_step, num_steps)
        injections: list[tuple[int, int, _ActiveFlow]] = []
        while start_step <= self._next_burst < end:
            burst_step = self._next_burst
            for source in range(self.fan_in):
                injections.append(
                    (
                        burst_step,
                        source,
                        _ActiveFlow(
                            self._flow_counter,
                            self.dst_port,
                            self.qclass,
                            self.burst_size,
                        ),
                    )
                )
                self._flow_counter += 1
            self._advance_burst(burst_step)
        return self._pool.emit_batch(start_step, end, injections)


class CompositeTraffic(_SequentialMixin, TrafficGenerator):
    """Superposition of independent generators (disjoint source pools)."""

    def __init__(self, generators: Iterable[TrafficGenerator]):
        self.generators = list(generators)
        if not self.generators:
            raise ValueError("CompositeTraffic needs at least one generator")

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        packets: list[Packet] = []
        for generator in self.generators:
            packets.extend(generator.arrivals(step))
        return packets

    def rng_streams(self) -> tuple[np.random.Generator, ...]:
        return tuple(rng for g in self.generators for rng in g.rng_streams())

    def can_batch(self) -> bool:
        """Batchable iff every child is, and no RNG is shared across children.

        With a shared generator object, child ``i``'s draws at step ``s``
        interleave between child ``j``'s draws at steps ``s`` and ``s + 1``
        in the per-step path; batching children one after another would
        consume the stream in a different order and change the traffic.
        """
        if not all(g.can_batch() for g in self.generators):
            return False
        owner: dict[int, int] = {}
        for child, generator in enumerate(self.generators):
            for rng in generator.rng_streams():
                if owner.setdefault(id(rng), child) != child:
                    return False
        return True

    def arrivals_batch(self, start_step: int, num_steps: int) -> ArrivalArrays:
        if not self.can_batch():
            raise NotImplementedError(
                "CompositeTraffic cannot batch: a child generator is "
                "unbatchable or an RNG is shared across children"
            )
        end = self._check_batch(start_step, num_steps)
        parts = [g.arrivals_batch(start_step, end - start_step) for g in self.generators]
        if len(parts) == 1:
            return parts[0]
        steps = np.concatenate([p[0] for p in parts])
        dsts = np.concatenate([p[1] for p in parts])
        qclasses = np.concatenate([p[2] for p in parts])
        # Children are concatenated in order, so a stable sort on the step
        # reproduces the per-step concatenation order within each step.
        order = np.argsort(steps, kind="stable")
        return steps[order], dsts[order], qclasses[order]


class ScriptedTraffic(_SequentialMixin, TrafficGenerator):
    """Deterministic arrivals from an explicit step → packets script.

    Used by tests and by the FM-model experiments, where a known tiny
    scenario must be reproduced exactly.
    """

    def __init__(self, script: dict[int, Sequence[tuple[int, int]]]):
        """``script`` maps step → list of (dst_port, qclass) arrivals."""
        self.script = {int(k): list(v) for k, v in script.items()}

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        return [
            Packet(dst_port=dst, qclass=qclass, flow_id=-1, arrival_step=step)
            for dst, qclass in self.script.get(step, [])
        ]

    def can_batch(self) -> bool:
        return True

    def arrivals_batch(self, start_step: int, num_steps: int) -> ArrivalArrays:
        end = self._check_batch(start_step, num_steps)
        steps: list[int] = []
        dsts: list[int] = []
        qclasses: list[int] = []
        for step in sorted(self.script):
            if start_step <= step < end:
                for dst, qclass in self.script[step]:
                    steps.append(step)
                    dsts.append(dst)
                    qclasses.append(qclass)
        if not steps:
            return _EMPTY_BATCH
        return (
            np.asarray(steps, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
            np.asarray(qclasses, dtype=np.int64),
        )
