"""Traffic generators producing per-time-step packet arrivals.

All generators share the same contract: :meth:`TrafficGenerator.arrivals`
is called once per simulator time step with a monotonically increasing
step index and returns the packets arriving at the switch in that step.

Sources model server NICs: each source can inject **at most one packet per
time step** (line rate), so a flow of S packets occupies its source for at
least S steps and fan-in of k sources onto one output port grows that
port's queue at rate ~(k-1) packets per step — the queue-building mechanism
the paper's imputation problem revolves around.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.switchsim.packet import Packet
from repro.traffic.distributions import FlowSizeDistribution, WebsearchSizes
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class _ActiveFlow:
    """A flow currently transmitting from a source."""

    flow_id: int
    dst_port: int
    qclass: int
    remaining: int


class _SourcePool:
    """Per-source flow queues with 1-packet-per-step pacing.

    Flows injected into a source are serialised FIFO: the source transmits
    the head flow's packets back to back, then moves to the next flow.
    """

    def __init__(self, num_sources: int):
        check_positive("num_sources", num_sources)
        self.num_sources = int(num_sources)
        self._queues: list[deque[_ActiveFlow]] = [deque() for _ in range(self.num_sources)]

    def inject(self, source: int, flow: _ActiveFlow) -> None:
        if not 0 <= source < self.num_sources:
            raise IndexError(f"source {source} out of range [0, {self.num_sources})")
        if flow.remaining < 1:
            raise ValueError(f"flow must have >= 1 packet, got {flow.remaining}")
        self._queues[source].append(flow)

    def emit(self, step: int) -> list[Packet]:
        """Emit at most one packet per busy source for this step."""
        packets: list[Packet] = []
        for queue in self._queues:
            if not queue:
                continue
            flow = queue[0]
            packets.append(
                Packet(
                    dst_port=flow.dst_port,
                    qclass=flow.qclass,
                    flow_id=flow.flow_id,
                    arrival_step=step,
                )
            )
            flow.remaining -= 1
            if flow.remaining == 0:
                queue.popleft()
        return packets

    @property
    def busy_sources(self) -> int:
        return sum(1 for q in self._queues if q)

    @property
    def backlog_packets(self) -> int:
        return sum(f.remaining for q in self._queues for f in q)


class TrafficGenerator(ABC):
    """Produces the packets arriving at the switch at each time step."""

    @abstractmethod
    def arrivals(self, step: int) -> list[Packet]:
        """Packets arriving at time step ``step``.

        Steps must be requested in increasing order (generators are
        stateful stream processes, like the sources they model).
        """


class _SequentialMixin:
    """Guards against out-of-order step queries."""

    _next_step: int = 0

    def _check_step(self, step: int) -> None:
        if step != self._next_step:
            raise ValueError(
                f"arrivals() must be called with consecutive steps; expected "
                f"{self._next_step}, got {step}"
            )
        self._next_step = step + 1


class PoissonFlowTraffic(_SequentialMixin, TrafficGenerator):
    """Open-loop Poisson flow arrivals (the websearch background traffic).

    Flows arrive as a Poisson process with ``flows_per_step`` expected
    arrivals per time step; each picks a uniform source, a uniform
    destination output port, a queue class from ``class_weights``, and a
    size from ``sizes`` (DCTCP websearch by default).
    """

    def __init__(
        self,
        num_sources: int,
        num_ports: int,
        flows_per_step: float,
        sizes: FlowSizeDistribution | None = None,
        class_weights: Sequence[float] = (0.5, 0.5),
        seed: RngLike = None,
    ):
        check_positive("num_ports", num_ports)
        if flows_per_step < 0:
            raise ValueError(f"flows_per_step must be >= 0, got {flows_per_step}")
        self._pool = _SourcePool(num_sources)
        self.num_ports = int(num_ports)
        self.flows_per_step = float(flows_per_step)
        self.sizes = sizes if sizes is not None else WebsearchSizes()
        weights = np.asarray(class_weights, dtype=float)
        if weights.ndim != 1 or (weights < 0).any() or weights.sum() == 0:
            raise ValueError(f"invalid class_weights: {class_weights}")
        self._class_probs = weights / weights.sum()
        self._rng = as_generator(seed)
        self._flow_counter = 0

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        num_new = self._rng.poisson(self.flows_per_step)
        for _ in range(num_new):
            source = int(self._rng.integers(self._pool.num_sources))
            dst = int(self._rng.integers(self.num_ports))
            qclass = int(self._rng.choice(len(self._class_probs), p=self._class_probs))
            size = self.sizes.sample(self._rng)
            self._pool.inject(
                source,
                _ActiveFlow(self._flow_counter, dst, qclass, size),
            )
            self._flow_counter += 1
        return self._pool.emit(step)


class IncastTraffic(_SequentialMixin, TrafficGenerator):
    """Periodic synchronised N-to-1 bursts (the incast workload).

    Every ``period`` steps (plus uniform jitter up to ``jitter``), ``fan_in``
    dedicated sources each start a flow of ``burst_size`` packets to the
    same destination port.  With per-source pacing of 1 packet/step, the
    victim port receives ``fan_in`` packets per step while draining one —
    the classic microburst.
    """

    def __init__(
        self,
        fan_in: int,
        burst_size: int,
        period: int,
        dst_port: int,
        qclass: int = 1,
        jitter: int = 0,
        seed: RngLike = None,
        start_step: int = 0,
    ):
        check_positive("fan_in", fan_in)
        check_positive("burst_size", burst_size)
        check_positive("period", period)
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self._pool = _SourcePool(fan_in)
        self.fan_in = int(fan_in)
        self.burst_size = int(burst_size)
        self.period = int(period)
        self.dst_port = int(dst_port)
        self.qclass = int(qclass)
        self.jitter = int(jitter)
        self._rng = as_generator(seed)
        self._flow_counter = 0
        self._next_burst = int(start_step)
        if jitter:
            self._next_burst += int(self._rng.integers(0, jitter + 1))

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        if step == self._next_burst:
            for source in range(self.fan_in):
                self._pool.inject(
                    source,
                    _ActiveFlow(
                        self._flow_counter, self.dst_port, self.qclass, self.burst_size
                    ),
                )
                self._flow_counter += 1
            self._next_burst += self.period
            if self.jitter:
                self._next_burst += int(self._rng.integers(-self.jitter, self.jitter + 1))
                self._next_burst = max(self._next_burst, step + 1)
        return self._pool.emit(step)


class CompositeTraffic(_SequentialMixin, TrafficGenerator):
    """Superposition of independent generators (disjoint source pools)."""

    def __init__(self, generators: Iterable[TrafficGenerator]):
        self.generators = list(generators)
        if not self.generators:
            raise ValueError("CompositeTraffic needs at least one generator")

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        packets: list[Packet] = []
        for generator in self.generators:
            packets.extend(generator.arrivals(step))
        return packets


class ScriptedTraffic(_SequentialMixin, TrafficGenerator):
    """Deterministic arrivals from an explicit step → packets script.

    Used by tests and by the FM-model experiments, where a known tiny
    scenario must be reproduced exactly.
    """

    def __init__(self, script: dict[int, Sequence[tuple[int, int]]]):
        """``script`` maps step → list of (dst_port, qclass) arrivals."""
        self.script = {int(k): list(v) for k, v in script.items()}

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        return [
            Packet(dst_port=dst, qclass=qclass, flow_id=-1, arrival_step=step)
            for dst, qclass in self.script.get(step, [])
        ]
