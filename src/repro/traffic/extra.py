"""Additional traffic generators: Markov on-off sources and trace replay.

These complement the websearch/incast mix of §4:

* :class:`OnOffTraffic` — per-source two-state Markov (ON: one packet per
  step to a fixed destination, OFF: silence).  The classic bursty-source
  model; useful for stressing buffer sharing with tunable burstiness.
* :class:`ReplayTraffic` — replays explicit per-step arrival arrays, so
  users can drive the simulator from recorded or externally generated
  traces (the "short real trace" the paper suggests operators can train
  from).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.switchsim.packet import Packet
from repro.traffic.generators import TrafficGenerator, _SequentialMixin
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


class OnOffTraffic(_SequentialMixin, TrafficGenerator):
    """Independent two-state Markov on-off sources.

    Each source flips between ON and OFF with the given per-step
    transition probabilities; while ON it emits one packet per step to its
    (fixed) destination queue.  Mean burst length is ``1/p_off`` steps and
    the long-run load per source is ``p_on / (p_on + p_off)``.
    """

    def __init__(
        self,
        num_sources: int,
        num_ports: int,
        p_on: float,
        p_off: float,
        class_weights: Sequence[float] = (0.5, 0.5),
        seed: RngLike = None,
    ):
        check_positive("num_sources", num_sources)
        check_positive("num_ports", num_ports)
        if not (0 < p_on <= 1 and 0 < p_off <= 1):
            raise ValueError(f"transition probabilities must be in (0, 1], got {p_on}, {p_off}")
        self.num_sources = int(num_sources)
        self.num_ports = int(num_ports)
        self.p_on = float(p_on)
        self.p_off = float(p_off)
        weights = np.asarray(class_weights, dtype=float)
        if weights.ndim != 1 or (weights < 0).any() or weights.sum() == 0:
            raise ValueError(f"invalid class_weights: {class_weights}")
        self._rng = as_generator(seed)
        self._on = np.zeros(self.num_sources, dtype=bool)
        self._dst = self._rng.integers(0, self.num_ports, size=self.num_sources)
        probs = weights / weights.sum()
        self._qclass = self._rng.choice(len(probs), size=self.num_sources, p=probs)
        self._flow_counter = 0

    @property
    def expected_load_per_source(self) -> float:
        """Long-run fraction of steps each source spends transmitting."""
        return self.p_on / (self.p_on + self.p_off)

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        flips = self._rng.random(self.num_sources)
        turning_on = ~self._on & (flips < self.p_on)
        turning_off = self._on & (flips < self.p_off)
        # A source that turns on picks a fresh destination (a new "flow").
        if turning_on.any():
            self._dst[turning_on] = self._rng.integers(
                0, self.num_ports, size=int(turning_on.sum())
            )
            self._flow_counter += int(turning_on.sum())
        self._on = (self._on | turning_on) & ~turning_off

        return [
            Packet(
                dst_port=int(self._dst[src]),
                qclass=int(self._qclass[src]),
                flow_id=src,
                arrival_step=step,
            )
            for src in np.nonzero(self._on)[0]
        ]


class ReplayTraffic(_SequentialMixin, TrafficGenerator):
    """Replays per-step arrival counts from arrays.

    ``arrivals_per_queue`` is shaped ``(num_queues, num_steps)`` in flat
    queue order (``port * queues_per_port + qclass``); entry ``[q, t]``
    packets arrive for queue ``q`` at step ``t``.  Steps beyond the array
    are silent.
    """

    def __init__(self, arrivals_per_queue: np.ndarray, queues_per_port: int):
        check_positive("queues_per_port", queues_per_port)
        arr = np.asarray(arrivals_per_queue)
        if arr.ndim != 2:
            raise ValueError(f"arrivals_per_queue must be 2-D, got shape {arr.shape}")
        if (arr < 0).any():
            raise ValueError("arrival counts must be non-negative")
        if arr.shape[0] % queues_per_port:
            raise ValueError(
                f"{arr.shape[0]} queues not divisible by queues_per_port={queues_per_port}"
            )
        self._arr = arr.astype(np.int64)
        self.queues_per_port = int(queues_per_port)

    @property
    def num_steps(self) -> int:
        return self._arr.shape[1]

    def arrivals(self, step: int) -> list[Packet]:
        self._check_step(step)
        if step >= self.num_steps:
            return []
        packets: list[Packet] = []
        for queue in np.nonzero(self._arr[:, step])[0]:
            port, qclass = divmod(int(queue), self.queues_per_port)
            packets.extend(
                Packet(dst_port=port, qclass=qclass, flow_id=-1, arrival_step=step)
                for _ in range(int(self._arr[queue, step]))
            )
        return packets
