"""repro.config — the typed configuration spine of the repo.

One schema layer over the existing config dataclasses provides:

* recursive validation with precise dotted error paths
  (:func:`validate`, :func:`from_mapping`);
* canonical serialization to/from TOML and JSON with a
  ``schema_version`` stamp and explicit defaults (:func:`dumps_toml`,
  :func:`load_config`, …);
* one stable content hash, :func:`config_digest`, that is the *single*
  source for trace-cache keys, Table-1 journal scopes, and checkpoint
  compatibility fingerprints;
* dotted-path overrides (:func:`apply_overrides`) backing the CLI's
  ``--set trainer.epochs=5`` grammar.

``python -m repro.config validate examples/*.toml`` checks files against
their experiment schemas and (optionally) a committed digest corpus —
see :mod:`repro.config.__main__` and the ``config-validate`` CI job.
"""

from repro.config.canonical import canonical_json, canonicalize
from repro.config.digest import (
    CONFIG_SCHEMA_VERSION,
    config_digest,
    register_digest_neutral_default,
)
from repro.config.errors import ConfigError
from repro.config.overrides import apply_overrides, parse_assignment
from repro.config.schema import field_types, from_mapping, to_mapping, validate
from repro.config.serialize import (
    config_from_document,
    dumps_json,
    dumps_toml,
    load_config,
    load_document,
    save_config,
    to_document,
)

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "ConfigError",
    "apply_overrides",
    "canonical_json",
    "canonicalize",
    "config_digest",
    "register_digest_neutral_default",
    "config_from_document",
    "dumps_json",
    "dumps_toml",
    "field_types",
    "from_mapping",
    "load_config",
    "load_document",
    "parse_assignment",
    "save_config",
    "to_document",
    "to_mapping",
    "validate",
]
