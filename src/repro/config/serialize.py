"""Canonical config documents: TOML and JSON, round-trip safe.

A config *document* wraps the config mapping with provenance::

    schema_version = 1          # CONFIG_SCHEMA_VERSION at write time
    experiment = "table1"       # which registry entry this configures

    [config]
    epochs = 10
    ...
    [config.scenario]
    num_ports = 2
    ...

Dumps are **explicit**: every field is written, defaults included, so a
checked-in file keeps meaning the same experiment even if code defaults
drift later.  The one exception is ``None`` — TOML has no null, so
None-valued optional fields are omitted and omission means None/default
on load.  Floats use ``repr`` (shortest round-trip form), so load(dump)
is bit-exact and digests survive the trip.

The TOML writer is local and minimal (the stdlib ships ``tomllib`` for
reading only); it covers exactly the schema layer's value set — scalars,
homogeneous arrays, nested tables — and rejects anything else loudly.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping, Union

from repro.config.digest import CONFIG_SCHEMA_VERSION
from repro.config.errors import ConfigError
from repro.config.schema import from_mapping, to_mapping

PathLike = Union[str, Path]

__all__ = [
    "to_document",
    "dumps_toml",
    "dumps_json",
    "save_config",
    "load_document",
    "config_from_document",
    "load_config",
]


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def to_document(config: Any, experiment: str | None = None) -> dict[str, Any]:
    """Wrap a config instance in the versioned document mapping."""
    document: dict[str, Any] = {"schema_version": CONFIG_SCHEMA_VERSION}
    if experiment is not None:
        document["experiment"] = experiment
    document["config"] = to_mapping(config)
    return document


def _toml_value(value: Any, path: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        text = repr(value)
        # TOML floats need a dot or exponent; repr(2.0) == '2.0' already
        # qualifies, but guard against integral-looking forms anyway.
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings share JSON's escapes
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v, path) for v in value) + "]"
    raise ConfigError(
        f"cannot encode {type(value).__name__} {value!r} as a TOML value", path
    )


def _emit_table(name: str, mapping: Mapping[str, Any], lines: list[str]) -> None:
    scalars = {
        k: v for k, v in mapping.items()
        if not isinstance(v, Mapping) and v is not None
    }
    tables = {k: v for k, v in mapping.items() if isinstance(v, Mapping)}
    if name:
        lines.append(f"[{name}]")
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_value(value, f'{name}.{key}' if name else key)}")
    for key, value in tables.items():
        lines.append("")
        _emit_table(f"{name}.{key}" if name else key, value, lines)


def dumps_toml(config: Any, experiment: str | None = None) -> str:
    """Serialize a config instance to a TOML document string."""
    document = to_document(config, experiment)
    lines: list[str] = []
    _emit_table("", document, lines)
    return "\n".join(lines) + "\n"


def dumps_json(config: Any, experiment: str | None = None) -> str:
    """Serialize a config instance to a JSON document string."""
    return json.dumps(to_document(config, experiment), indent=2) + "\n"


def save_config(config: Any, path: PathLike, experiment: str | None = None) -> Path:
    """Write a config document to ``path`` (format chosen by suffix)."""
    path = Path(path)
    if path.suffix == ".toml":
        text = dumps_toml(config, experiment)
    elif path.suffix == ".json":
        text = dumps_json(config, experiment)
    else:
        raise ConfigError(
            f"unsupported config suffix {path.suffix!r} for {path} "
            "(use .toml or .json)"
        )
    path.write_text(text, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def load_document(path: PathLike) -> dict[str, Any]:
    """Parse a ``.toml`` or ``.json`` config document from disk."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"config file not found: {path}")
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".toml":
        import tomllib

        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"{path} is not valid TOML: {exc}") from exc
    if path.suffix == ".json":
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise ConfigError(f"{path} must contain a JSON object at top level")
        return document
    raise ConfigError(
        f"unsupported config suffix {path.suffix!r} for {path} (use .toml or .json)"
    )


def config_from_document(
    document: Mapping[str, Any],
    cls: type,
    *,
    expected_experiment: str | None = None,
    source: str = "config",
) -> Any:
    """Validate a parsed document and construct its config instance.

    Checks the ``schema_version`` stamp and, when ``expected_experiment``
    is given, that the document's ``experiment`` field (if present)
    matches — loading a ``scalability`` file into ``table1`` should fail
    before any work runs, not produce a half-valid config.
    """
    version = document.get("schema_version")
    if version != CONFIG_SCHEMA_VERSION:
        raise ConfigError(
            f"{source} has schema_version {version!r}; this code reads "
            f"version {CONFIG_SCHEMA_VERSION}"
        )
    declared = document.get("experiment")
    if (
        expected_experiment is not None
        and declared is not None
        and declared != expected_experiment
    ):
        raise ConfigError(
            f"{source} declares experiment {declared!r}, but was loaded "
            f"for {expected_experiment!r}"
        )
    body = document.get("config")
    if not isinstance(body, Mapping):
        raise ConfigError(f"{source} is missing its [config] table")
    return from_mapping(cls, body)


def load_config(
    path: PathLike, cls: type, *, expected_experiment: str | None = None
) -> Any:
    """Load, validate, and construct a config of type ``cls`` from disk."""
    return config_from_document(
        load_document(path),
        cls,
        expected_experiment=expected_experiment,
        source=str(path),
    )
