"""The single content hash behind every "is this the same experiment?".

Before this module existed the repo had three independent hashing
schemes — the trace cache's ``trace_key``, the Table-1 journal's
``journal_scope``, and the checkpoint ``__meta__`` compatibility check —
each canonicalizing config its own way, so they could silently disagree
about whether two runs were "the same".  All three now delegate here.

The digest is a SHA-256 over a canonical JSON payload::

    {"__config_schema__": <CONFIG_SCHEMA_VERSION>,
     "kind": <dataclass name or "mapping">,
     "config": <canonical mapping, keys sorted>}

Properties:

* **order-insensitive** — a reordered-but-equal mapping digests equal;
* **kind-separated** — a ``Table1Config`` and a plain dict with the same
  fields digest differently, so hashes never collide across domains;
* **versioned** — bumping :data:`CONFIG_SCHEMA_VERSION` invalidates
  every digest at once (a deliberate, global cache/journal flush).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

from repro.config.canonical import canonicalize
from repro.config.schema import to_mapping

__all__ = ["CONFIG_SCHEMA_VERSION", "config_digest"]

#: Bump when the canonical encoding or payload layout changes
#: incompatibly; every existing digest (cache keys, journal scopes,
#: checkpoint fingerprints) then misses/mismatches at once.
CONFIG_SCHEMA_VERSION = 1


def config_digest(config: Any, *, kind: str | None = None) -> str:
    """Stable SHA-256 hex digest of a config dataclass or plain mapping.

    ``kind`` defaults to the dataclass's class name (``"mapping"`` for a
    plain mapping) and domain-separates digests: two structurally equal
    configs of different types never hash equal.  Raises ``TypeError``
    for values with no canonical encoding (objects, callables).
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        body = to_mapping(config)
        kind = kind if kind is not None else type(config).__name__
    elif isinstance(config, Mapping):
        body = canonicalize(dict(config))
        kind = kind if kind is not None else "mapping"
    else:
        raise TypeError(
            "config_digest expects a dataclass instance or a mapping, "
            f"got {type(config).__name__}"
        )
    payload = {
        "__config_schema__": CONFIG_SCHEMA_VERSION,
        "kind": kind,
        "config": body,
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
