"""The single content hash behind every "is this the same experiment?".

Before this module existed the repo had three independent hashing
schemes — the trace cache's ``trace_key``, the Table-1 journal's
``journal_scope``, and the checkpoint ``__meta__`` compatibility check —
each canonicalizing config its own way, so they could silently disagree
about whether two runs were "the same".  All three now delegate here.

The digest is a SHA-256 over a canonical JSON payload::

    {"__config_schema__": <CONFIG_SCHEMA_VERSION>,
     "kind": <dataclass name or "mapping">,
     "config": <canonical mapping, keys sorted>}

Properties:

* **order-insensitive** — a reordered-but-equal mapping digests equal;
* **kind-separated** — a ``Table1Config`` and a plain dict with the same
  fields digest differently, so hashes never collide across domains;
* **versioned** — bumping :data:`CONFIG_SCHEMA_VERSION` invalidates
  every digest at once (a deliberate, global cache/journal flush).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

from repro.config.canonical import canonicalize

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "config_digest",
    "register_digest_neutral_default",
]

#: Bump when the canonical encoding or payload layout changes
#: incompatibly; every existing digest (cache keys, journal scopes,
#: checkpoint fingerprints) then misses/mismatches at once.
CONFIG_SCHEMA_VERSION = 1

#: Fields elided from the digest while they hold their registered
#: default, keyed by dataclass name.  This is how a config dataclass
#: grows a new knob without orphaning every pinned digest, cache entry,
#: and journal in the wild: the digest only moves once the knob is
#: actually used.  Register via :func:`register_digest_neutral_default`
#: in the module that defines the field.
_DIGEST_NEUTRAL_DEFAULTS: dict[str, dict[str, Any]] = {}


def register_digest_neutral_default(cls_name: str, field: str, default: Any) -> None:
    """Declare ``cls_name.field`` digest-neutral at ``default``.

    While an instance holds the (canonicalized) default value, the field
    is omitted from the digest payload — so digests pinned before the
    field existed stay valid.  Any other value participates normally.
    """
    _DIGEST_NEUTRAL_DEFAULTS.setdefault(cls_name, {})[field] = canonicalize(default)


def _digest_body(config: Any) -> dict[str, Any]:
    """``to_mapping`` with digest-neutral defaulted fields elided."""
    neutral = _DIGEST_NEUTRAL_DEFAULTS.get(type(config).__name__, {})
    out: dict[str, Any] = {}
    for field in dataclasses.fields(config):
        if not field.init:
            continue
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out[field.name] = _digest_body(value)
        else:
            encoded = canonicalize(value)
            if field.name in neutral and encoded == neutral[field.name]:
                continue
            out[field.name] = encoded
    return out


def config_digest(config: Any, *, kind: str | None = None) -> str:
    """Stable SHA-256 hex digest of a config dataclass or plain mapping.

    ``kind`` defaults to the dataclass's class name (``"mapping"`` for a
    plain mapping) and domain-separates digests: two structurally equal
    configs of different types never hash equal.  Raises ``TypeError``
    for values with no canonical encoding (objects, callables).
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        body = _digest_body(config)
        kind = kind if kind is not None else type(config).__name__
    elif isinstance(config, Mapping):
        body = canonicalize(dict(config))
        kind = kind if kind is not None else "mapping"
    else:
        raise TypeError(
            "config_digest expects a dataclass instance or a mapping, "
            f"got {type(config).__name__}"
        )
    payload = {
        "__config_schema__": CONFIG_SCHEMA_VERSION,
        "kind": kind,
        "config": body,
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
