"""Dotted-path config overrides: ``--set trainer.epochs=5``.

The override grammar (documented in ``docs/configuration.md``)::

    KEY=VALUE
    KEY   := dotted path of dataclass fields (trainer.epochs, scenario.alphas)
    VALUE := a JSON literal (5, 0.5, true, [1.0, 0.5], "quoted") or,
             when JSON parsing fails, a bare string (mse, auto)

Values are type-checked against the target field's annotation and nested
dataclasses are rebuilt immutably via :func:`dataclasses.replace`, so
``__post_init__`` invariants re-run on every override.  Unknown keys and
type mismatches raise :class:`~repro.config.errors.ConfigError` with the
full dotted path (and a did-you-mean suggestion), which the CLI turns
into an exit-code-2 diagnostic.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterable

from repro.config.errors import ConfigError
from repro.config.schema import coerce, field_types, unknown_key_error

__all__ = ["parse_assignment", "apply_overrides"]


def parse_assignment(assignment: str) -> tuple[list[str], str]:
    """Split ``"a.b.c=value"`` into (``["a","b","c"]``, ``"value"``)."""
    key, sep, raw = assignment.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ConfigError(
            f"override {assignment!r} is not of the form KEY=VALUE "
            "(e.g. --set trainer.epochs=5)"
        )
    parts = key.split(".")
    if any(not part for part in parts):
        raise ConfigError(f"override key {key!r} has an empty path component")
    return parts, raw.strip()


def _parse_value(raw: str) -> Any:
    """A JSON literal when it parses, a bare string otherwise."""
    try:
        return json.loads(raw)
    except ValueError:
        return raw


def _set_path(config: Any, parts: list[str], raw: str, prefix: str) -> Any:
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise ConfigError(
            f"not a config section (cannot descend into a "
            f"{type(config).__name__})",
            prefix.rstrip("."),
        )
    hints = field_types(type(config))
    name = parts[0]
    if name not in hints:
        raise unknown_key_error(name, list(hints), prefix.rstrip("."))
    full = f"{prefix}{name}"
    if len(parts) == 1:
        value = coerce(_parse_value(raw), hints[name], full)
    else:
        value = _set_path(getattr(config, name), parts[1:], raw, f"{full}.")
    try:
        return dataclasses.replace(config, **{name: value})
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        # A __post_init__ invariant (e.g. epochs > 0) rejected the value.
        raise ConfigError(str(exc), full) from exc


def apply_overrides(config: Any, assignments: Iterable[str]) -> Any:
    """Apply ``KEY=VALUE`` assignments to a config, returning a new one.

    Assignments apply left to right (a later key overrides an earlier
    one); the input config is never mutated.
    """
    for assignment in assignments:
        parts, raw = parse_assignment(assignment)
        config = _set_path(config, parts, raw, "")
    return config
