"""The one exception type every configuration failure raises.

A configuration error is always a *user* error (a bad file, a bad
``--set``), so the message must point at the exact field that failed —
``trainer.epochs: expected int, got str 'banana'`` — never at a Python
stack frame.  :class:`ConfigError` carries the dotted path alongside the
human-readable message so callers (the CLI, the validator) can exit 2
with a usable diagnostic.
"""

from __future__ import annotations

__all__ = ["ConfigError"]


class ConfigError(ValueError):
    """A configuration value, file, or override is invalid.

    ``path`` is the dotted location of the offending field (e.g.
    ``"trainer.epochs"`` or ``"scenario.alphas[1]"``); empty when the
    problem is not attributable to a single field.
    """

    def __init__(self, message: str, path: str = ""):
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)
