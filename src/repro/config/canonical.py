"""Canonical JSON-primitive encoding shared by every config hash.

``canonicalize`` reduces a value to plain JSON-encodable primitives,
deterministically across processes and numpy versions: numpy scalars
collapse to Python numbers, arrays and tuples to lists, mappings to
string-keyed dicts (key-sorted later by :func:`json.dumps`).  Anything
whose encoding would be ambiguous (objects, callables) raises
:class:`TypeError` instead of guessing — a silent ``repr`` fallback would
make two unequal configs hash equal.

This is the *single* canonical form: the trace cache, the Table-1
journal scope, and checkpoint compatibility all hash exactly this
encoding (see :func:`repro.config.config_digest`).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

import numpy as np

__all__ = ["canonicalize", "canonical_json"]


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-encodable primitives."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonicalize(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Field order is irrelevant: canonical_json sorts keys.
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    raise TypeError(
        f"config values must be JSON-encodable primitives, got {type(value).__name__}"
    )


def canonical_json(value: Any) -> str:
    """The canonical serialized form: sorted keys, no whitespace."""
    return json.dumps(canonicalize(value), sort_keys=True, separators=(",", ":"))
