"""Schema layer over the repo's config dataclasses.

Every experiment configuration in this repo is a (possibly nested)
dataclass — ``ScenarioConfig`` inside ``Table1Config`` inside
``ReplicationConfig``, and so on.  This module derives the schema from
the dataclass definitions themselves (field names, type annotations,
defaults) instead of maintaining a parallel description that could
drift:

* :func:`to_mapping` — serialize a config instance to a plain mapping
  with **every** field explicit (defaults included), tuples as lists,
  numpy scalars as Python numbers;
* :func:`from_mapping` — the inverse: recursive construction with type
  checking and precise dotted error paths (``scenario.alphas[1]:
  expected float, got str 'x'``); missing keys fall back to the field's
  default, unknown keys fail with a did-you-mean suggestion;
* :func:`validate` — round-trips an instance through both, so any
  ill-typed field or failing ``__post_init__`` invariant surfaces with
  its path.

Supported field annotations: ``bool``/``int``/``float``/``str``,
``X | None``, ``tuple[X, ...]`` (and fixed-arity tuples), ``list[X]``,
``dict`` (string keys, primitive values), and nested dataclasses.  That
set is deliberately small — it is exactly what a TOML/JSON config file
can express.
"""

from __future__ import annotations

import dataclasses
import difflib
import types
from typing import Any, Mapping, Union, get_args, get_origin, get_type_hints

import numpy as np

from repro.config.canonical import canonicalize
from repro.config.errors import ConfigError

__all__ = ["to_mapping", "from_mapping", "validate", "field_types"]

_NONE_TYPE = type(None)


def _join(path: str, name: str) -> str:
    return f"{path}.{name}" if path else name


def _typename(value: Any) -> str:
    return type(value).__name__


def field_types(cls: type) -> dict[str, Any]:
    """Resolved type annotations of a dataclass's init fields."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    hints = get_type_hints(cls)
    return {f.name: hints[f.name] for f in dataclasses.fields(cls) if f.init}


def to_mapping(config: Any) -> dict[str, Any]:
    """Serialize a config dataclass to a plain mapping, defaults explicit.

    Field order follows the dataclass definition (stable and
    human-readable in TOML); hashing sorts keys separately, so order
    never affects a digest.
    """
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise TypeError(f"expected a dataclass instance, got {_typename(config)}")
    out: dict[str, Any] = {}
    for field in dataclasses.fields(config):
        if not field.init:
            continue
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out[field.name] = to_mapping(value)
        else:
            out[field.name] = canonicalize(value)
    return out


def coerce(value: Any, annotation: Any, path: str) -> Any:
    """Coerce ``value`` to ``annotation``, or raise :class:`ConfigError`.

    The only lossless numeric widening is ``int -> float``; everything
    else must match exactly (``bool`` is *not* an ``int`` here, despite
    Python's subclassing, because ``epochs = true`` is always a mistake).
    """
    origin = get_origin(annotation)

    if annotation is Any:
        try:
            return canonicalize(value)
        except TypeError as exc:
            raise ConfigError(str(exc), path) from exc

    if origin in (Union, types.UnionType):
        args = get_args(annotation)
        if value is None:
            if _NONE_TYPE in args:
                return None
            raise ConfigError(f"expected {_describe(annotation)}, got None", path)
        candidates = [a for a in args if a is not _NONE_TYPE]
        errors = []
        for candidate in candidates:
            try:
                return coerce(value, candidate, path)
            except ConfigError as exc:
                errors.append(exc)
        if len(errors) == 1:
            raise errors[0]
        raise ConfigError(
            f"expected {_describe(annotation)}, got {_typename(value)} {value!r}",
            path,
        )

    if dataclasses.is_dataclass(annotation):
        if isinstance(value, annotation):
            return value
        if isinstance(value, Mapping):
            return from_mapping(annotation, value, path=path)
        raise ConfigError(
            f"expected a {annotation.__name__} table, got {_typename(value)} {value!r}",
            path,
        )

    if annotation is bool:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise ConfigError(f"expected bool, got {_typename(value)} {value!r}", path)

    if annotation is int:
        if isinstance(value, bool):
            raise ConfigError(f"expected int, got bool {value!r}", path)
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise ConfigError(f"expected int, got {_typename(value)} {value!r}", path)

    if annotation is float:
        if isinstance(value, bool):
            raise ConfigError(f"expected float, got bool {value!r}", path)
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        raise ConfigError(f"expected float, got {_typename(value)} {value!r}", path)

    if annotation is str:
        if isinstance(value, str):
            return value
        raise ConfigError(f"expected str, got {_typename(value)} {value!r}", path)

    if origin is tuple:
        return tuple(_coerce_sequence(value, annotation, path))

    if origin is list:
        return list(_coerce_sequence(value, annotation, path))

    if annotation is dict or origin is dict:
        if not isinstance(value, Mapping):
            raise ConfigError(
                f"expected a table, got {_typename(value)} {value!r}", path
            )
        try:
            return {str(k): canonicalize(v) for k, v in value.items()}
        except TypeError as exc:
            raise ConfigError(str(exc), path) from exc

    raise ConfigError(
        f"unsupported annotation {_describe(annotation)} "
        "(supported: bool/int/float/str, optionals, tuples, lists, dicts, "
        "nested dataclasses)",
        path,
    )


def _coerce_sequence(value: Any, annotation: Any, path: str) -> list[Any]:
    if isinstance(value, np.ndarray):
        value = value.tolist()
    if not isinstance(value, (list, tuple)):
        raise ConfigError(
            f"expected a list, got {_typename(value)} {value!r}", path
        )
    args = get_args(annotation)
    if not args:
        elements = [Any] * len(value)
    elif get_origin(annotation) is tuple and not (len(args) == 2 and args[1] is Ellipsis):
        # Fixed-arity tuple: one annotation per position.
        if len(value) != len(args):
            raise ConfigError(
                f"expected exactly {len(args)} elements, got {len(value)}", path
            )
        elements = list(args)
    else:
        element_type = args[0]
        elements = [element_type] * len(value)
    return [
        coerce(item, element, f"{path}[{i}]")
        for i, (item, element) in enumerate(zip(value, elements))
    ]


def _describe(annotation: Any) -> str:
    if annotation is _NONE_TYPE:
        return "None"
    if get_origin(annotation) in (Union, types.UnionType):
        return " | ".join(_describe(a) for a in get_args(annotation))
    return getattr(annotation, "__name__", str(annotation))


def unknown_key_error(name: str, known: list[str], path: str) -> ConfigError:
    """A precise 'unknown key' error, with a did-you-mean when close."""
    suggestion = difflib.get_close_matches(name, known, n=1)
    hint = f" (did you mean {suggestion[0]!r}?)" if suggestion else ""
    return ConfigError(
        f"unknown key{hint}; valid keys: {', '.join(sorted(known))}",
        _join(path, name),
    )


def from_mapping(cls: type, mapping: Mapping[str, Any], path: str = "") -> Any:
    """Construct ``cls`` from a mapping, validating recursively.

    Missing keys take the field's default; unknown keys and type
    mismatches raise :class:`ConfigError` with the dotted path of the
    offending entry.  ``__post_init__`` invariants (e.g. ``epochs > 0``)
    are reported the same way.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    if not isinstance(mapping, Mapping):
        raise ConfigError(
            f"expected a {cls.__name__} table, got {_typename(mapping)} {mapping!r}",
            path,
        )
    hints = field_types(cls)
    for key in mapping:
        if key not in hints:
            raise unknown_key_error(str(key), list(hints), path)
    kwargs = {
        name: coerce(mapping[name], annotation, _join(path, name))
        for name, annotation in hints.items()
        if name in mapping
    }
    try:
        return cls(**kwargs)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(str(exc), path) from exc


def validate(config: Any) -> Any:
    """Check a config instance against its own schema; returns it rebuilt.

    Round-trips through :func:`to_mapping`/:func:`from_mapping`, so any
    ill-typed field value or violated ``__post_init__`` invariant raises
    :class:`ConfigError` with a precise path.  The return value equals
    the input for any well-formed config.
    """
    return from_mapping(type(config), to_mapping(config))
