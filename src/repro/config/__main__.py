"""``python -m repro.config`` — validate config files, pin their digests.

The ``config-validate`` CI job runs::

    python -m repro.config validate examples/*.toml \\
        --digests tests/corpus/config_digests.json

which (1) loads every file, (2) validates it against the schema of the
experiment it declares, and (3) asserts its :func:`~repro.config.
config_digest` matches the committed corpus — so an accidental semantic
change to a checked-in config (or to the canonical encoding itself)
fails CI instead of silently re-keying caches and journals.

``--update`` rewrites the corpus from the current files (the recorded
recipe for intentional changes).  Exit codes: 0 OK, 1 digest drift,
2 invalid config.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config.digest import config_digest
from repro.config.errors import ConfigError
from repro.config.serialize import config_from_document, load_document


def _digest_for(path: Path) -> tuple[str, str]:
    """Validate one config file; returns (experiment name, digest)."""
    from repro.experiments import get_experiment

    document = load_document(path)
    name = document.get("experiment")
    if not isinstance(name, str):
        raise ConfigError(f"{path} does not declare an 'experiment' field")
    experiment = get_experiment(name)
    config = config_from_document(
        document,
        experiment.config_cls,
        expected_experiment=name,
        source=str(path),
    )
    return name, config_digest(config)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.config",
        description="validate config files against their experiment schemas",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    v = sub.add_parser("validate", help="validate files, optionally pin digests")
    v.add_argument("files", nargs="+", type=Path)
    v.add_argument(
        "--digests",
        type=Path,
        help="JSON corpus of expected digests (file path -> digest)",
    )
    v.add_argument(
        "--update",
        action="store_true",
        help="rewrite --digests from the current files instead of checking",
    )
    args = parser.parse_args(argv)

    recorded: dict[str, str] = {}
    if args.digests is not None and args.digests.exists() and not args.update:
        recorded = json.loads(args.digests.read_text(encoding="utf-8"))

    current: dict[str, str] = {}
    drifted: list[str] = []
    for path in args.files:
        key = path.as_posix()
        try:
            name, digest = _digest_for(path)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        current[key] = digest
        status = "ok"
        if recorded:
            if key not in recorded:
                status = "UNPINNED (not in corpus)"
                drifted.append(key)
            elif recorded[key] != digest:
                status = f"DIGEST DRIFT (pinned {recorded[key][:16]}…)"
                drifted.append(key)
        print(f"{status:>8}  {key}  experiment={name}  digest={digest[:16]}…")

    if args.update:
        if args.digests is None:
            print("error: --update requires --digests", file=sys.stderr)
            return 2
        args.digests.parent.mkdir(parents=True, exist_ok=True)
        args.digests.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"pinned {len(current)} digests -> {args.digests}")
        return 0

    if drifted:
        print(
            "error: config digests drifted; if intentional, re-pin with "
            "--update and bump anything keyed on them",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
