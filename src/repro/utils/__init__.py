"""Shared utilities: deterministic RNG handling, validation, logging.

These helpers are deliberately small; every stochastic component in the
library accepts either an integer seed or a ``numpy.random.Generator`` so
that experiments are reproducible end to end.
"""

from repro.utils.rng import RngLike, as_generator, spawn_generators
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_non_negative,
    check_positive,
    check_same_length,
)

__all__ = [
    "RngLike",
    "as_generator",
    "spawn_generators",
    "check_1d",
    "check_2d",
    "check_non_negative",
    "check_positive",
    "check_same_length",
]
