"""Deterministic random-number-generator plumbing.

Every stochastic component in the library takes a ``seed`` argument that may
be ``None`` (fresh entropy), an ``int``, or an existing
``numpy.random.Generator``.  Centralising the coercion here keeps the
signature uniform and the experiments reproducible.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Passing an existing generator returns it unchanged, so components can
    share one stream when the caller wants correlated sampling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are statistically independent of each other and of the parent,
    which makes it safe to hand one to each simulated component (e.g. one
    per traffic source) without accidental stream sharing.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(seed)
    return [np.random.default_rng(parent.integers(0, 2**63)) for _ in range(count)]
