"""Lightweight argument validation helpers.

These raise ``ValueError`` with messages that name the offending argument,
which keeps user-facing error reporting consistent across the library.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_1d(name: str, array: np.ndarray) -> np.ndarray:
    """Return ``array`` as a 1-D float ndarray or raise ``ValueError``."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_2d(name: str, array: np.ndarray) -> np.ndarray:
    """Return ``array`` as a 2-D float ndarray or raise ``ValueError``."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_same_length(name_a: str, a: np.ndarray, name_b: str, b: np.ndarray) -> None:
    """Raise ``ValueError`` unless the two arrays have equal first dimension."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )
