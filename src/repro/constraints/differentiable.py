"""Differentiable relaxations Φ and Ψ of constraints C1–C3 (§3.1).

The Knowledge-Augmented Loss needs the constraints as differentiable
functions of the transformer output.  C1/C2 are equalities whose residuals
are already differentiable (max is differentiable a.e., like max-pooling).
C3 contains an ``ite`` over "queue non-empty"; following the paper we
replace the indicator with ``tanh(scale * qlen)`` — ~1 for non-empty, ~0
for empty — and model the disjunction across a port's queues by summing
the indicators (an over-approximation of OR, which is safe for a
lower-bound constraint that only penalises *excess* non-emptiness).

All functions operate on **normalised** predictions shaped ``(B, Q, T)``
and return per-example residual tensors; the KAL trainer squares/weights
them (augmented Lagrangian).
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.switchsim.switch import SwitchConfig


def _group_intervals(pred: Tensor, interval: int) -> Tensor:
    """Reshape (B, Q, T) into (B, Q, I, interval)."""
    b, q, t = pred.shape
    if t % interval:
        raise ValueError(f"length {t} not a multiple of interval {interval}")
    return pred.reshape(b, q, t // interval, interval)


def phi_max(pred: Tensor, m_max_norm: np.ndarray, interval: int) -> Tensor:
    """C1 residual: per-interval max minus measured max, shape (B, Q, I).

    ``m_max_norm`` is the LANZ max in the same normalised units as
    ``pred``.
    """
    maxima = _group_intervals(pred, interval).max(axis=3)
    return maxima - Tensor(np.asarray(m_max_norm, dtype=float))


def phi_periodic(
    pred: Tensor, m_sample_norm: np.ndarray, sample_positions: np.ndarray
) -> Tensor:
    """C2 residual: imputed value at sampled bins minus sample, (B, Q, I)."""
    positions = np.asarray(sample_positions, dtype=int)
    sampled = pred[:, :, positions]
    return sampled - Tensor(np.asarray(m_sample_norm, dtype=float))


def psi_sent(
    pred: Tensor,
    m_sent: np.ndarray,
    config: SwitchConfig,
    interval: int,
    indicator_scale: float = 10.0,
) -> Tensor:
    """C3 residual Ψ: smoothed NE minus sent count, normalised by interval.

    Returns shape (B, P, I); the constraint is ``Ψ <= 0``.  The smoothed
    non-empty indicator is ``tanh(indicator_scale * qlen_normalised)``.
    ``NE`` is counted in fine bins while ``m_sent`` is in packets — the
    same (valid, conservative) comparison the paper makes when it states
    C3 over the millisecond-granularity imputed series: a port with a
    non-empty queue in a bin sends at least one packet in that bin, so the
    bin count lower-bounds the packet count.  The residual is divided by
    ``interval`` to express it as a fraction of the interval.
    """
    indicator = (pred * indicator_scale).tanh()
    per_port = []
    for port in range(config.num_ports):
        idx = list(config.queues_of_port(port))
        # Sum of per-queue indicators over-approximates the OR (>= OR).
        port_busy = indicator[:, idx, :].sum(axis=1)  # (B, T)
        b, t = port_busy.shape
        ne = port_busy.reshape(b, t // interval, interval).sum(axis=2)  # (B, I)
        per_port.append(ne)
    ne_all = Tensor.stack(per_port, axis=1)  # (B, P, I)
    sent = Tensor(np.asarray(m_sent, dtype=float))
    return (ne_all - sent) * (1.0 / interval)
