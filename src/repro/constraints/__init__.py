"""The paper's constraint set C1–C3 (§3) in two forms.

* :mod:`~repro.constraints.spec` — exact (non-differentiable) evaluation of
  the constraints on an imputed series in packet units.  These provide the
  consistency-error metrics of Table 1 rows a–c and the satisfaction checks
  the CEM must pass.
* :mod:`~repro.constraints.differentiable` — the differentiable relaxations
  Φ (equality constraints C1/C2) and Ψ (inequality constraint C3, via a
  Tanh surrogate for the non-differentiable ``ite``) that the
  Knowledge-Augmented Loss folds into training (§3.1).
"""

from repro.constraints.spec import (
    ConstraintReport,
    check_constraints,
    max_constraint_error,
    periodic_constraint_error,
    sent_count_error,
)
from repro.constraints.differentiable import (
    phi_max,
    phi_periodic,
    psi_sent,
)

__all__ = [
    "ConstraintReport",
    "check_constraints",
    "max_constraint_error",
    "periodic_constraint_error",
    "sent_count_error",
    "phi_max",
    "phi_periodic",
    "psi_sent",
]
