"""Exact evaluation of constraints C1–C3 on an imputed series.

All functions take the imputed queue lengths in **packet units** shaped
``(Q, T)`` for one window, plus the window's coarse measurements, and
return *normalised errors* in the style of Table 1: each constraint's
violation magnitude scaled to a comparable, dimensionless quantity, then
averaged.

Definitions (window of ``I`` intervals of ``interval`` fine bins):

* **C1 (max)**: for every queue ``q`` and interval ``i``, the max of the
  imputed series over the interval must equal the LANZ max ``m_max[q, i]``.
  Error: ``|max - m_max| / max(m_max, 1)`` averaged over (q, i).
* **C2 (periodic)**: at each sampled bin the imputed value must equal the
  sample.  Error: ``|imputed - sample| / max(sample, 1)`` averaged.
* **C3 (sent count)**: per port ``p`` and interval ``i``, the number of
  bins in which some queue of the port is non-empty (``NE``) is a lower
  bound on SNMP sent packets.  Only *excess* is a violation (the
  constraint is one-sided): ``max(0, NE - m_sent) / interval`` averaged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.switchsim.switch import SwitchConfig
from repro.telemetry.dataset import ImputationSample
from repro.utils.validation import check_positive

#: Queue lengths below this many packets count as "empty" when evaluating
#: C3 on continuous model outputs (the models emit real-valued series).
NONEMPTY_EPSILON = 0.5


def _interval_view(series: np.ndarray, interval: int) -> np.ndarray:
    """Reshape (Q, T) into (Q, I, interval); T must divide evenly."""
    q, t = series.shape
    if t % interval:
        raise ValueError(f"series length {t} not a multiple of interval {interval}")
    return series.reshape(q, t // interval, interval)


def max_constraint_error(
    imputed: np.ndarray, m_max: np.ndarray, interval: int
) -> float:
    """Normalised C1 error (Table 1 row a)."""
    check_positive("interval", interval)
    by_interval = _interval_view(np.asarray(imputed, dtype=float), interval)
    maxima = by_interval.max(axis=2)
    denom = np.maximum(np.asarray(m_max, dtype=float), 1.0)
    return float((np.abs(maxima - m_max) / denom).mean())


def periodic_constraint_error(
    imputed: np.ndarray, m_sample: np.ndarray, sample_positions: np.ndarray
) -> float:
    """Normalised C2 error (Table 1 row b)."""
    imputed = np.asarray(imputed, dtype=float)
    sampled = imputed[:, np.asarray(sample_positions, dtype=int)]
    denom = np.maximum(np.asarray(m_sample, dtype=float), 1.0)
    return float((np.abs(sampled - m_sample) / denom).mean())


def nonempty_bins(
    imputed: np.ndarray,
    config: SwitchConfig,
    interval: int,
    epsilon: float = NONEMPTY_EPSILON,
) -> np.ndarray:
    """``NE[p, i]``: bins per interval in which port p has a non-empty queue."""
    imputed = np.asarray(imputed, dtype=float)
    counts = []
    for port in range(config.num_ports):
        idx = list(config.queues_of_port(port))
        busy = (imputed[idx] > epsilon).any(axis=0).astype(float)
        counts.append(_interval_view(busy[None, :], interval)[0].sum(axis=1))
    return np.stack(counts, axis=0)


def sent_count_error(
    imputed: np.ndarray,
    m_sent: np.ndarray,
    config: SwitchConfig,
    interval: int,
    epsilon: float = NONEMPTY_EPSILON,
) -> float:
    """Normalised C3 error (Table 1 row c): one-sided excess of NE over sent."""
    ne = nonempty_bins(imputed, config, interval, epsilon)
    excess = np.maximum(0.0, ne - np.asarray(m_sent, dtype=float))
    return float((excess / interval).mean())


@dataclass
class ConstraintReport:
    """Per-constraint normalised errors for one imputed window."""

    max_error: float
    periodic_error: float
    sent_error: float

    @property
    def satisfied(self) -> bool:
        """All three constraints hold (up to numerical tolerance)."""
        tol = 1e-9
        return (
            self.max_error <= tol and self.periodic_error <= tol and self.sent_error <= tol
        )


def check_constraints(
    imputed: np.ndarray, sample: ImputationSample, config: SwitchConfig
) -> ConstraintReport:
    """Evaluate C1–C3 for an imputed window against its measurements."""
    return ConstraintReport(
        max_error=max_constraint_error(imputed, sample.m_max, sample.interval),
        periodic_error=periodic_constraint_error(
            imputed, sample.m_sample, sample.sample_positions
        ),
        sent_error=sent_count_error(imputed, sample.m_sent, config, sample.interval),
    )
