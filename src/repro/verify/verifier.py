"""Statistical constraint verification of a trained imputer."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constraints.spec import ConstraintReport, check_constraints
from repro.imputation.base import Imputer
from repro.telemetry.dataset import ImputationSample, TelemetryDataset
from repro.utils.rng import RngLike, as_generator


@dataclass
class WindowVerdict:
    """Verification outcome for one window."""

    window_index: int
    report: ConstraintReport
    perturbed: bool

    @property
    def satisfied(self) -> bool:
        return self.report.satisfied


@dataclass
class VerificationReport:
    """Aggregate verdicts over a verification corpus."""

    verdicts: list[WindowVerdict] = field(default_factory=list)
    tolerance: float = 0.05

    @property
    def num_windows(self) -> int:
        return len(self.verdicts)

    @property
    def satisfaction_rate(self) -> float:
        """Fraction of windows with *exactly* satisfied constraints."""
        if not self.verdicts:
            return 0.0
        return sum(v.satisfied for v in self.verdicts) / len(self.verdicts)

    @property
    def tolerant_rate(self) -> float:
        """Fraction with every normalised error below ``tolerance``."""
        if not self.verdicts:
            return 0.0
        ok = sum(
            1
            for v in self.verdicts
            if v.report.max_error <= self.tolerance
            and v.report.periodic_error <= self.tolerance
            and v.report.sent_error <= self.tolerance
        )
        return ok / len(self.verdicts)

    def mean_errors(self) -> dict[str, float]:
        """Mean normalised error per constraint family."""
        if not self.verdicts:
            return {"max": 0.0, "periodic": 0.0, "sent": 0.0}
        return {
            "max": float(np.mean([v.report.max_error for v in self.verdicts])),
            "periodic": float(np.mean([v.report.periodic_error for v in self.verdicts])),
            "sent": float(np.mean([v.report.sent_error for v in self.verdicts])),
        }

    def worst_window(self) -> WindowVerdict | None:
        """The verdict with the largest total normalised error."""
        if not self.verdicts:
            return None
        return max(
            self.verdicts,
            key=lambda v: v.report.max_error + v.report.periodic_error + v.report.sent_error,
        )

    def summary(self) -> str:
        """Human-readable audit summary."""
        errors = self.mean_errors()
        lines = [
            f"verified {self.num_windows} windows",
            f"exact constraint satisfaction: {self.satisfaction_rate * 100:.1f}%",
            f"within tolerance ({self.tolerance}): {self.tolerant_rate * 100:.1f}%",
            f"mean errors: max={errors['max']:.3f} periodic={errors['periodic']:.3f} "
            f"sent={errors['sent']:.3f}",
        ]
        worst = self.worst_window()
        if worst is not None:
            lines.append(
                f"worst window: #{worst.window_index} "
                f"(max={worst.report.max_error:.3f}, "
                f"periodic={worst.report.periodic_error:.3f}, "
                f"sent={worst.report.sent_error:.3f})"
            )
        return "\n".join(lines)


class ConstraintVerifier:
    """Audits an imputer's outputs against C1–C3 over a dataset.

    Optionally augments the corpus with *perturbed* variants of each
    window (scaled measurement magnitudes) to probe generalisation beyond
    the exact training distribution — knowledge that is truly learned
    should hold approximately under modest distribution shift.
    """

    def __init__(self, dataset: TelemetryDataset, tolerance: float = 0.05):
        if len(dataset) == 0:
            raise ValueError("verification dataset is empty")
        self.dataset = dataset
        self.tolerance = float(tolerance)

    def verify(
        self,
        imputer: Imputer,
        perturbations: int = 0,
        perturbation_scale: float = 0.2,
        seed: RngLike = 0,
    ) -> VerificationReport:
        """Run the audit; ``perturbations`` extra scaled variants per window."""
        if perturbations < 0:
            raise ValueError(f"perturbations must be >= 0, got {perturbations}")
        rng = as_generator(seed)
        report = VerificationReport(tolerance=self.tolerance)
        for index, sample in enumerate(self.dataset.samples):
            report.verdicts.append(
                WindowVerdict(
                    window_index=index,
                    report=check_constraints(
                        imputer.impute(sample), sample, self.dataset.switch_config
                    ),
                    perturbed=False,
                )
            )
            for _ in range(perturbations):
                variant = self._perturb(sample, rng, perturbation_scale)
                report.verdicts.append(
                    WindowVerdict(
                        window_index=index,
                        report=check_constraints(
                            imputer.impute(variant), variant, self.dataset.switch_config
                        ),
                        perturbed=True,
                    )
                )
        return report

    def _perturb(
        self, sample: ImputationSample, rng: np.random.Generator, scale: float
    ) -> ImputationSample:
        """Scale the window's queue-length measurements by a random factor.

        The scaled measurements stay mutually consistent (max >= sample at
        every interval; counts untouched), so the constraint check remains
        well-posed — we are shifting the *magnitude* distribution the model
        sees, which is exactly where §2.2 says ML struggles.
        """
        import dataclasses

        factor = float(1.0 + rng.uniform(-scale, scale))
        m_sample = np.round(sample.m_sample * factor)
        m_max = np.maximum(np.round(sample.m_max * factor), m_sample)
        features = self._rebuild_features(sample, m_sample, m_max)
        return dataclasses.replace(
            sample, m_sample=m_sample, m_max=m_max, features=features
        )

    def _rebuild_features(
        self, sample: ImputationSample, m_sample: np.ndarray, m_max: np.ndarray
    ) -> np.ndarray:
        """Regenerate the model input for the perturbed measurements."""
        from repro.telemetry.dataset import build_features
        from repro.telemetry.sampling import CoarseTelemetry

        telemetry = CoarseTelemetry(
            interval=sample.interval,
            qlen_sample=m_sample,
            qlen_max=m_max,
            received=sample.m_received,
            sent=sample.m_sent,
            dropped=sample.m_dropped,
        )
        return build_features(telemetry, self.dataset.scaler, sample.num_bins)
