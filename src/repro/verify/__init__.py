"""Verification of trained models against networking knowledge.

The paper's closing research question (§1, §5): *"How can we verify that
an ML system has indeed learned networking principles?"*  This package
provides the statistical flavour of that verification: drive the trained
imputer over a corpus of (held-out or perturbed) inputs, evaluate the
exact constraints C1–C3 on every output, and summarise how often — and by
how much — the model violates the knowledge it was trained with.

Unlike the CEM (which *repairs* outputs), the verifier *measures* the
model itself, so it quantifies exactly how much of the knowledge made it
into the weights — the paper's Table-1 rows a–c, generalised into a
reusable audit.
"""

from repro.verify.verifier import (
    ConstraintVerifier,
    VerificationReport,
    WindowVerdict,
)

__all__ = [
    "ConstraintVerifier",
    "VerificationReport",
    "WindowVerdict",
]
