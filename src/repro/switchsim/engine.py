"""Vectorized fast-path switch engine.

The reference engine (:class:`~repro.switchsim.switch.OutputQueuedSwitch`)
simulates one packet time step at a time over Python ``OutputQueue``
objects — clear, but slow: every step allocates counter arrays, walks
scheduler objects, and boxes each packet in a dataclass.  Since the
simulator feeds *every* experiment in this repo (Table 1, Fig. 4, the
ablations, all training datasets), that per-step overhead is the binding
constraint on how many scenarios and seeds the evaluation can sweep.

:class:`ArraySwitchEngine` replaces the object graph with flat array
state and processes whole fine-grained bins per inner call:

* per-queue FIFO occupancy lives in preallocated **ring buffers of
  arrival timestamps** (one fixed-capacity row per queue — a packet is
  just its arrival step, there is no per-packet object);
* queue lengths, shared-buffer occupancy, and the per-port round-robin
  pointers are flat arrays updated incrementally;
* arrivals are materialised thousands of steps at a time through
  :meth:`~repro.traffic.generators.TrafficGenerator.arrivals_batch` (with
  a per-step fallback for generators that cannot batch);
* per-bin outputs (``qlen``, ``qlen_max``, port counters, buffer
  occupancy) are written as whole columns once per bin, and bins that are
  provably inert (empty buffer, no arrivals) are skipped outright.

Inside the per-step core the mutable state is mirrored into plain Python
lists: CPython list indexing is ~3× faster than numpy scalar indexing,
and the Dynamic-Threshold admission check is inherently sequential (each
admitted packet shrinks the threshold seen by the next), so the inner
recurrence cannot itself be expressed as a whole-array operation.  All
bin-level aggregation is numpy.

The engine is **bit-identical** to the reference engine: admission order,
DT thresholds, round-robin state, and delay accounting replicate
``OutputQueuedSwitch.step`` exactly, which the equivalence property tests
(``tests/switchsim/test_engine_equivalence.py``) assert across randomized
configurations, traffic mixes, and seeds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

import repro.obs as obs
from repro.switchsim.scheduler import RoundRobinScheduler, StrictPriorityScheduler
from repro.switchsim.simulation import SimulationTrace
from repro.switchsim.switch import SwitchConfig

if TYPE_CHECKING:  # avoid a circular import: traffic depends on switchsim
    from repro.traffic.generators import TrafficGenerator

#: Target number of steps per arrival-materialisation chunk.
_CHUNK_STEPS = 8192


class EngineUnsupported(ValueError):
    """The array engine cannot reproduce this configuration bit-exactly."""


def _scheduler_mode(config: SwitchConfig) -> str | None:
    """``"rr"``/``"sp"`` when the array engine supports the scheduler.

    Exact-type checks on a probe instance: a subclass may override
    ``select`` with different semantics, and deficit round robin carries
    quantum state the flat round-robin pointer cannot express.
    """
    probe = config.scheduler_factory()
    if type(probe) is RoundRobinScheduler:
        return "rr"
    if type(probe) is StrictPriorityScheduler:
        return "sp"
    return None


class ArraySwitchEngine:
    """Array-based switch core running whole bins per inner call.

    State persists across :meth:`run` calls (like the reference switch
    object), so a driver may simulate a trace in several installments.
    """

    def __init__(self, config: SwitchConfig):
        if config.aqm_factory is not None:
            raise EngineUnsupported(
                "array engine implements the direct Dynamic-Threshold "
                'admission only; configs with an aqm_factory need engine="reference"'
            )
        mode = _scheduler_mode(config)
        if mode is None:
            raise EngineUnsupported(
                f"array engine supports RoundRobinScheduler and "
                f"StrictPriorityScheduler only; config builds "
                f"{type(config.scheduler_factory()).__name__} — use "
                f'engine="reference"'
            )
        self.config = config
        capacity = config.buffer_capacity
        num_queues = config.num_queues
        # A queue can never exceed the shared buffer, so one buffer-sized
        # ring of arrival timestamps per queue always suffices.
        self._rings: list[list[int]] = [[0] * capacity for _ in range(num_queues)]
        self._heads = [0] * num_queues
        self._tails = [0] * num_queues
        self._lengths = [0] * num_queues
        self._occupancy = 0
        # Round-robin pointers; strict priority keeps them pinned at 0 by
        # masking the post-serve update, making one dequeue path serve both.
        self._rr_next = [0] * config.num_ports
        self._rr_mask = 1 if mode == "rr" else 0
        self._alphas = [
            float(config.alphas[i % config.queues_per_port]) for i in range(num_queues)
        ]
        self.step_count = 0

    # ------------------------------------------------------------------
    # Introspection (array views of the flat state)
    # ------------------------------------------------------------------
    @classmethod
    def supports(cls, config: SwitchConfig) -> bool:
        """Whether this engine can run ``config`` bit-identically."""
        return config.aqm_factory is None and _scheduler_mode(config) is not None

    def queue_lengths(self) -> np.ndarray:
        """Current lengths of all queues, in flat queue order."""
        return np.asarray(self._lengths, dtype=np.int64)

    @property
    def buffer_occupancy(self) -> int:
        return self._occupancy

    # ------------------------------------------------------------------
    # Arrival materialisation
    # ------------------------------------------------------------------
    def _materialize(
        self, traffic: "TrafficGenerator", start: int, num_steps: int
    ) -> tuple[list[int], list[int], list[int], list[int]]:
        """Flat per-packet lists (step, qidx, port, arrival_step) for the span."""
        cfg = self.config
        queues_per_port = cfg.queues_per_port
        if traffic.can_batch():
            steps, dsts, qclasses = traffic.arrivals_batch(start, num_steps)
            if steps.size == 0:
                return [], [], [], []
            invalid = (
                (dsts < 0)
                | (dsts >= cfg.num_ports)
                | (qclasses < 0)
                | (qclasses >= queues_per_port)
            )
            if invalid.any():
                bad = int(np.argmax(invalid))
                raise IndexError(
                    f"arrival out of range: dst_port={int(dsts[bad])}, "
                    f"qclass={int(qclasses[bad])} for {cfg.num_ports} ports × "
                    f"{queues_per_port} queues"
                )
            qidx = dsts * queues_per_port + qclasses
            step_list = steps.tolist()
            return step_list, qidx.tolist(), dsts.tolist(), step_list
        step_list: list[int] = []
        qidx_list: list[int] = []
        port_list: list[int] = []
        arrival_list: list[int] = []
        queue_index = cfg.queue_index
        for step in range(start, start + num_steps):
            for packet in traffic.arrivals(step):
                qidx_list.append(queue_index(packet.dst_port, packet.qclass))
                step_list.append(step)
                port_list.append(packet.dst_port)
                arrival_list.append(
                    packet.arrival_step if packet.arrival_step >= 0 else step
                )
        return step_list, qidx_list, port_list, arrival_list

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self, traffic: "TrafficGenerator", num_bins: int, steps_per_bin: int
    ) -> SimulationTrace:
        """Simulate ``num_bins`` fine-grained bins and return the trace."""
        # One coarse span per run — never per bin or step — so the
        # disabled-path overhead on the hot loop stays unmeasurable.
        with obs.span("switchsim.array.run", num_bins=int(num_bins)):
            return self._run(traffic, num_bins, steps_per_bin)

    def _run(
        self, traffic: "TrafficGenerator", num_bins: int, steps_per_bin: int
    ) -> SimulationTrace:
        cfg = self.config
        num_queues = cfg.num_queues
        num_ports = cfg.num_ports
        queues_per_port = cfg.queues_per_port
        capacity = cfg.buffer_capacity

        qlen = np.zeros((num_queues, num_bins), dtype=np.int64)
        qlen_max = np.zeros((num_queues, num_bins), dtype=np.int64)
        received = np.zeros((num_ports, num_bins), dtype=np.int64)
        sent = np.zeros((num_ports, num_bins), dtype=np.int64)
        dropped = np.zeros((num_ports, num_bins), dtype=np.int64)
        delay_sum = np.zeros((num_ports, num_bins), dtype=np.int64)
        occupancy_out = np.zeros(num_bins, dtype=np.int64)

        # Hot-loop locals: attribute lookups are hoisted once per run.
        rings = self._rings
        heads = self._heads
        tails = self._tails
        lengths = self._lengths
        rr_next = self._rr_next
        rr_mask = self._rr_mask
        alphas = self._alphas
        occ = self._occupancy
        two_queues = queues_per_port == 2
        port_range = range(num_ports)
        qclass_range = range(queues_per_port)

        bins_per_chunk = max(1, _CHUNK_STEPS // steps_per_bin)
        start_step = self.step_count
        for chunk_bin in range(0, num_bins, bins_per_chunk):
            chunk_bins = min(bins_per_chunk, num_bins - chunk_bin)
            chunk_start = start_step + chunk_bin * steps_per_bin
            psteps, pqidx, pports, parrivals = self._materialize(
                traffic, chunk_start, chunk_bins * steps_per_bin
            )
            num_packets = len(psteps)
            cursor = 0
            step = chunk_start
            for b in range(chunk_bin, chunk_bin + chunk_bins):
                bin_end = step + steps_per_bin
                if occ == 0 and (cursor >= num_packets or psteps[cursor] >= bin_end):
                    # Inert bin: nothing buffered, nothing arriving — all
                    # outputs for this bin are the zeros already in place.
                    step = bin_end
                    continue
                bin_max = lengths
                first_step = True
                recv_b = [0] * num_ports
                sent_b = [0] * num_ports
                drop_b = [0] * num_ports
                delay_b = [0] * num_ports
                while step < bin_end:
                    touched: list[int] = []
                    # --- arrivals: sequential DT admission ---
                    while cursor < num_packets and psteps[cursor] == step:
                        qi = pqidx[cursor]
                        port = pports[cursor]
                        recv_b[port] += 1
                        if occ < capacity and lengths[qi] < alphas[qi] * (
                            capacity - occ
                        ):
                            tail = tails[qi]
                            rings[qi][tail] = parrivals[cursor]
                            tails[qi] = tail + 1 if tail + 1 < capacity else 0
                            lengths[qi] += 1
                            occ += 1
                            touched.append(qi)
                        else:
                            drop_b[port] += 1
                        cursor += 1
                    # --- departures: one packet per port at line rate ---
                    if occ:
                        if two_queues:
                            for port in port_range:
                                base = port + port
                                offset = rr_next[port]
                                qi = base + offset
                                if not lengths[qi]:
                                    offset = 1 - offset
                                    qi = base + offset
                                    if not lengths[qi]:
                                        continue
                                head = heads[qi]
                                arrival = rings[qi][head]
                                heads[qi] = head + 1 if head + 1 < capacity else 0
                                lengths[qi] -= 1
                                occ -= 1
                                sent_b[port] += 1
                                delay_b[port] += step - arrival
                                rr_next[port] = (1 - offset) & rr_mask
                                touched.append(qi)
                        else:
                            for port in port_range:
                                base = port * queues_per_port
                                pointer = rr_next[port]
                                for probe in qclass_range:
                                    offset = pointer + probe
                                    if offset >= queues_per_port:
                                        offset -= queues_per_port
                                    qi = base + offset
                                    if lengths[qi]:
                                        head = heads[qi]
                                        arrival = rings[qi][head]
                                        heads[qi] = (
                                            head + 1 if head + 1 < capacity else 0
                                        )
                                        lengths[qi] -= 1
                                        occ -= 1
                                        sent_b[port] += 1
                                        delay_b[port] += step - arrival
                                        next_offset = offset + 1
                                        if next_offset >= queues_per_port:
                                            next_offset = 0
                                        rr_next[port] = next_offset * rr_mask
                                        touched.append(qi)
                                        break
                    # --- per-bin max of the post-departure lengths ---
                    if first_step:
                        bin_max = lengths[:]
                        first_step = False
                    else:
                        for qi in touched:
                            length = lengths[qi]
                            if length > bin_max[qi]:
                                bin_max[qi] = length
                    step += 1
                qlen[:, b] = lengths
                qlen_max[:, b] = bin_max
                received[:, b] = recv_b
                sent[:, b] = sent_b
                dropped[:, b] = drop_b
                delay_sum[:, b] = delay_b
                occupancy_out[b] = occ

        self._occupancy = occ
        self.step_count = start_step + num_bins * steps_per_bin
        trace = SimulationTrace(
            config=cfg,
            steps_per_bin=steps_per_bin,
            qlen=qlen,
            qlen_max=qlen_max,
            received=received,
            sent=sent,
            dropped=dropped,
            delay_sum=delay_sum,
            buffer_occupancy=occupancy_out,
        )
        trace.validate()
        return trace
