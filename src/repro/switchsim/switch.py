"""The output-queued shared-buffer switch (Fig. 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.switchsim.aqm import AqmPolicy
from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.packet import Packet
from repro.switchsim.queues import OutputQueue
from repro.switchsim.scheduler import RoundRobinScheduler, Scheduler


@dataclass(frozen=True)
class SwitchConfig:
    """Static configuration of the simulated switch.

    Attributes:
        num_ports: number of output ports ``N``.
        queues_per_port: queues per port (2 in the paper's scenario).
        buffer_capacity: shared buffer size in packets.
        alphas: per-class Dynamic-Threshold factors, one per queue class.
        scheduler_factory: builds the per-port scheduler; defaults to
            round-robin across the port's queues (work-conserving).
        aqm_factory: optionally builds an
            :class:`~repro.switchsim.aqm.AqmPolicy` shared by the
            switch's queues; ``None`` (the default) keeps the original
            direct Dynamic-Threshold admission — the bit-identical path
            the array engine supports.
    """

    num_ports: int = 4
    queues_per_port: int = 2
    buffer_capacity: int = 200
    alphas: tuple[float, ...] = (1.0, 0.5)
    scheduler_factory: Callable[[], Scheduler] = RoundRobinScheduler
    aqm_factory: Optional[Callable[[], AqmPolicy]] = None

    def __post_init__(self):
        if self.num_ports <= 0:
            raise ValueError(f"num_ports must be positive, got {self.num_ports}")
        if self.queues_per_port <= 0:
            raise ValueError(
                f"queues_per_port must be positive, got {self.queues_per_port}"
            )
        if len(self.alphas) != self.queues_per_port:
            raise ValueError(
                f"need one alpha per queue class: got {len(self.alphas)} alphas "
                f"for {self.queues_per_port} queues"
            )

    @property
    def num_queues(self) -> int:
        return self.num_ports * self.queues_per_port

    def queue_index(self, port: int, qclass: int) -> int:
        """Flat queue index for (port, class); queues of a port are adjacent."""
        if not 0 <= port < self.num_ports:
            raise IndexError(f"port {port} out of range [0, {self.num_ports})")
        if not 0 <= qclass < self.queues_per_port:
            raise IndexError(f"qclass {qclass} out of range [0, {self.queues_per_port})")
        return port * self.queues_per_port + qclass

    def queues_of_port(self, port: int) -> range:
        """Flat indices of the queues belonging to ``port``."""
        start = port * self.queues_per_port
        return range(start, start + self.queues_per_port)


@dataclass
class StepCounters:
    """Per-step port-level counters (the quantities SNMP aggregates).

    ``delay_sum`` accumulates, per port, the queueing delay (in time
    steps) of the packets transmitted this step — the ground truth behind
    the latency downstream tasks.
    """

    received: np.ndarray
    enqueued: np.ndarray
    dropped: np.ndarray
    sent: np.ndarray
    delay_sum: np.ndarray


class OutputQueuedSwitch:
    """Simulates one time step at a time.

    A step processes arrivals (admission through the shared buffer's
    dynamic threshold), then lets every port's scheduler dequeue at most
    one packet (line rate).  Queue lengths reported for the step are the
    post-departure lengths, matching the FM model of §2.3 where the length
    at ``t`` is the enqueued packets minus the dequeued one.
    """

    def __init__(self, config: SwitchConfig):
        self.config = config
        self.buffer = SharedBuffer(config.buffer_capacity, alpha=max(config.alphas))
        self.aqm: Optional[AqmPolicy] = (
            config.aqm_factory() if config.aqm_factory is not None else None
        )
        self.queues: list[OutputQueue] = []
        for port in range(config.num_ports):
            for qclass in range(config.queues_per_port):
                self.queues.append(
                    OutputQueue(
                        port,
                        qclass,
                        self.buffer,
                        alpha=config.alphas[qclass],
                        aqm=self.aqm,
                    )
                )
        self.schedulers: list[Scheduler] = [
            config.scheduler_factory() for _ in range(config.num_ports)
        ]
        # Incrementally maintained mirror of the per-queue lengths, so
        # queue_lengths() need not rebuild a list + array every step.
        self._lengths = np.zeros(config.num_queues, dtype=np.int64)
        self.step_count = 0

    # ------------------------------------------------------------------
    # Queue access helpers
    # ------------------------------------------------------------------
    def queue(self, port: int, qclass: int) -> OutputQueue:
        """The queue object at (port, class)."""
        return self.queues[self.config.queue_index(port, qclass)]

    def queue_lengths(self) -> np.ndarray:
        """Current lengths of all queues, in flat queue order.

        Returns a copy of the incrementally maintained lengths array; the
        mirror tracks every enqueue/dequeue made through :meth:`step`.
        Callers mutating queues directly (e.g. ``queue.offer`` in a unit
        test) should read ``queue.length`` instead.
        """
        return self._lengths.copy()

    def port_queues(self, port: int) -> Sequence[OutputQueue]:
        return [self.queues[i] for i in self.config.queues_of_port(port)]

    # ------------------------------------------------------------------
    # Simulation step
    # ------------------------------------------------------------------
    def step(self, arrivals: Iterable[Packet]) -> StepCounters:
        """Advance one time step given this step's arriving packets."""
        cfg = self.config
        received = np.zeros(cfg.num_ports, dtype=np.int64)
        enqueued = np.zeros(cfg.num_ports, dtype=np.int64)
        dropped = np.zeros(cfg.num_ports, dtype=np.int64)
        sent = np.zeros(cfg.num_ports, dtype=np.int64)
        delay_sum = np.zeros(cfg.num_ports, dtype=np.int64)

        for packet in arrivals:
            queue_index = cfg.queue_index(packet.dst_port, packet.qclass)
            queue = self.queues[queue_index]
            received[packet.dst_port] += 1
            # Stamp untimed packets so per-packet delay is well defined.
            if packet.arrival_step < 0:
                packet = Packet(
                    dst_port=packet.dst_port,
                    qclass=packet.qclass,
                    flow_id=packet.flow_id,
                    arrival_step=self.step_count,
                )
            if queue.offer(packet):
                enqueued[packet.dst_port] += 1
                self._lengths[queue_index] += 1
            else:
                dropped[packet.dst_port] += 1

        for port in range(cfg.num_ports):
            queues = self.port_queues(port)
            choice = self.schedulers[port].select(queues)
            if choice is not None:
                packet = queues[choice].dequeue()
                if packet is None:
                    raise RuntimeError(
                        f"scheduler selected empty queue {choice} on port {port}"
                    )
                self._lengths[port * cfg.queues_per_port + choice] -= 1
                sent[port] += 1
                if packet.arrival_step >= 0:
                    delay_sum[port] += self.step_count - packet.arrival_step

        self.step_count += 1
        return StepCounters(
            received=received,
            enqueued=enqueued,
            dropped=dropped,
            sent=sent,
            delay_sum=delay_sum,
        )

    def reset(self) -> None:
        """Clear all queues and counters for a fresh run."""
        for queue in self.queues:
            queue.clear()
            queue.total_enqueued = 0
            queue.total_dropped = 0
            queue.total_dequeued = 0
            queue.total_marked = 0
        if self.aqm is not None:
            self.aqm.reset()
        self.buffer.reset()
        self.schedulers = [self.config.scheduler_factory() for _ in range(self.config.num_ports)]
        self._lengths[:] = 0
        self.step_count = 0
