"""FIFO output queue bound to the shared buffer."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.switchsim.aqm import AQM_ADMIT_MARK, AQM_DROP, AqmPolicy
from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.packet import Packet


class OutputQueue:
    """One FIFO queue of an output port, drawing from the shared buffer.

    ``alpha`` is the queue's Dynamic-Threshold scaling factor; queues of
    different classes may use different alphas (e.g. a smaller alpha keeps
    the low-priority queue from starving the high-priority one).

    ``aqm`` optionally routes admission through an
    :class:`~repro.switchsim.aqm.AqmPolicy` (shared across the switch's
    queues); when ``None`` the queue keeps the original direct
    Dynamic-Threshold check — the bit-identical default path.
    """

    def __init__(
        self,
        port: int,
        qclass: int,
        buffer: SharedBuffer,
        alpha: float = 1.0,
        aqm: Optional[AqmPolicy] = None,
    ):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.port = port
        self.qclass = qclass
        self.alpha = alpha
        self.aqm = aqm
        self._buffer = buffer
        self._packets: deque[Packet] = deque()
        self.total_enqueued = 0
        self.total_dropped = 0
        self.total_dequeued = 0
        self.total_marked = 0

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def length(self) -> int:
        """Current queue length in packets."""
        return len(self._packets)

    @property
    def is_empty(self) -> bool:
        return not self._packets

    def threshold(self) -> float:
        """This queue's current DT admission threshold."""
        return self._buffer.threshold(self.alpha)

    def offer(self, packet: Packet) -> bool:
        """Try to enqueue ``packet``; returns False (and counts a drop) if
        the admission policy — DT by default — rejects it."""
        if self.aqm is not None:
            decision = self.aqm.admit(
                self.length, self.alpha, self._buffer.occupancy, self._buffer.capacity
            )
            if decision == AQM_DROP:
                self.total_dropped += 1
                return False
            self._buffer.allocate()
            self._packets.append(packet)
            self.total_enqueued += 1
            if decision == AQM_ADMIT_MARK:
                self.total_marked += 1
            return True
        if self._buffer.admits(self.length, self.alpha):
            self._buffer.allocate()
            self._packets.append(packet)
            self.total_enqueued += 1
            return True
        self.total_dropped += 1
        return False

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None if empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._buffer.release()
        self.total_dequeued += 1
        return packet

    def clear(self) -> None:
        """Drop all queued packets (releasing their buffer space)."""
        while self._packets:
            self._packets.popleft()
            self._buffer.release()
