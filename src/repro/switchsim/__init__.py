"""Discrete-time shared-buffer output-queued switch simulator.

This package is the repo's substitute for the paper's ns-3 setup (§4): it
simulates the switch of Fig. 2 — ``N`` output ports, two queues per port,
one buffer shared by every queue with Dynamic-Threshold (DT) admission
[Choudhury & Hahne 1998], and a work-conserving scheduler that dequeues at
line rate (one packet per port per time step).

Time is discretised into *packet time steps*: one step is the time to
transmit one packet at line rate, matching the FM model of §2.3 (the paper
notes ~90 steps per 1 ms fine-grained bin).  The simulation records
per-step queue lengths and per-port received/sent/dropped counters, which
:mod:`repro.telemetry` then bins into the fine-grained (1 ms) ground truth
and samples into the coarse-grained (50 ms) operator view.
"""

from repro.switchsim.packet import Packet
from repro.switchsim.aqm import (
    AQM_ADMIT,
    AQM_ADMIT_MARK,
    AQM_DROP,
    AqmConfig,
    AqmPolicy,
    DtPolicy,
    EcnPolicy,
    RedPolicy,
)
from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.queues import OutputQueue
from repro.switchsim.fabric import (
    Fabric,
    FabricTrace,
    TopologyConfig,
    fabric_switch_configs,
)
from repro.switchsim.scheduler import (
    RoundRobinScheduler,
    Scheduler,
    StrictPriorityScheduler,
)
from repro.switchsim.switch import OutputQueuedSwitch, StepCounters, SwitchConfig
from repro.switchsim.simulation import Simulation, SimulationTrace
from repro.switchsim.engine import ArraySwitchEngine, EngineUnsupported
from repro.switchsim.cache import TraceCache
from repro.switchsim.io import load_trace, save_trace
from repro.switchsim.voq import (
    IslipScheduler,
    VoqConfig,
    VoqSimulation,
    VoqSwitch,
    VoqTrace,
)

__all__ = [
    "Packet",
    "AQM_DROP",
    "AQM_ADMIT",
    "AQM_ADMIT_MARK",
    "AqmPolicy",
    "AqmConfig",
    "DtPolicy",
    "RedPolicy",
    "EcnPolicy",
    "SharedBuffer",
    "OutputQueue",
    "TopologyConfig",
    "Fabric",
    "FabricTrace",
    "fabric_switch_configs",
    "Scheduler",
    "RoundRobinScheduler",
    "StrictPriorityScheduler",
    "OutputQueuedSwitch",
    "SwitchConfig",
    "StepCounters",
    "Simulation",
    "SimulationTrace",
    "ArraySwitchEngine",
    "EngineUnsupported",
    "TraceCache",
    "save_trace",
    "load_trace",
    "VoqConfig",
    "VoqSwitch",
    "VoqSimulation",
    "VoqTrace",
    "IslipScheduler",
]
