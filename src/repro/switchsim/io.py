"""Persistence for simulation traces (.npz).

Simulating long traces is the expensive step of dataset generation;
saving them lets experiments (and the CLI) reuse one simulation across
many training runs, and lets users bring externally generated traces into
the pipeline as long as they provide the same arrays.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.switchsim.simulation import SimulationTrace
from repro.switchsim.switch import SwitchConfig

PathLike = Union[str, Path]

_ARRAY_FIELDS = (
    "qlen",
    "qlen_max",
    "received",
    "sent",
    "dropped",
    "delay_sum",
    "buffer_occupancy",
)


def save_trace(trace: SimulationTrace, path: PathLike) -> None:
    """Write a trace and its switch configuration to ``path`` (npz)."""
    config = trace.config
    np.savez_compressed(
        Path(path),
        steps_per_bin=np.int64(trace.steps_per_bin),
        num_ports=np.int64(config.num_ports),
        queues_per_port=np.int64(config.queues_per_port),
        buffer_capacity=np.int64(config.buffer_capacity),
        alphas=np.asarray(config.alphas, dtype=float),
        **{name: getattr(trace, name) for name in _ARRAY_FIELDS},
    )


def load_trace(path: PathLike) -> SimulationTrace:
    """Load a trace saved by :func:`save_trace`.

    The scheduler factory is not serialisable; the restored config uses
    the default scheduler, which only matters if the trace is used to
    *reconfigure a simulator* (replaying or analysing the trace itself
    never touches it).
    """
    with np.load(Path(path)) as archive:
        missing = [f for f in _ARRAY_FIELDS if f not in archive.files]
        if missing:
            raise ValueError(f"{path} is not a trace archive; missing {missing}")
        config = SwitchConfig(
            num_ports=int(archive["num_ports"]),
            queues_per_port=int(archive["queues_per_port"]),
            buffer_capacity=int(archive["buffer_capacity"]),
            alphas=tuple(float(a) for a in archive["alphas"]),
        )
        trace = SimulationTrace(
            config=config,
            steps_per_bin=int(archive["steps_per_bin"]),
            **{name: archive[name] for name in _ARRAY_FIELDS},
        )
    trace.validate()
    return trace
