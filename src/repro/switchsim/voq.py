"""Input-queued switch with Virtual Output Queues and iSLIP scheduling.

The paper assumes output-queued switches "without loss of generality"
(§2.1).  This module provides the other classic architecture so the
telemetry pipeline can be studied beyond that assumption: an N×N
input-queued switch where each input port keeps one Virtual Output Queue
(VOQ) per output and a crossbar transfers at most one packet per input
and per output each time step, matched by the iSLIP algorithm (McKeown,
1999) — iterative request/grant/accept with round-robin pointers.

Knowledge is architecture-specific, and this switch makes that concrete:

* **C1/C2 still hold** — per-queue maxima and samples constrain any queue
  series, whatever the switch;
* **C3 does not** — an input-queued switch is *not* work-conserving per
  output: a non-empty VOQ for output ``j`` may be starved by crossbar
  contention, so "non-empty bins ≤ packets sent" is no longer a valid
  bound.  The test suite demonstrates the violation, and any constraint
  machinery applied to VOQ telemetry must drop C3 (e.g.
  ``ConstraintEnforcer`` cannot be used as-is).

Buffering: each input port has a Dynamic-Threshold shared buffer across
its N VOQs, mirroring the output-queued switch's buffer model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.switchsim.buffer import SharedBuffer
from repro.switchsim.packet import Packet
from repro.switchsim.queues import OutputQueue
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class VoqConfig:
    """Static configuration of the input-queued switch."""

    num_ports: int = 4  # N: inputs == outputs
    buffer_per_input: int = 64  # shared across one input's N VOQs
    alpha: float = 1.0  # Dynamic-Threshold factor
    islip_iterations: int = 1

    def __post_init__(self):
        check_positive("num_ports", self.num_ports)
        check_positive("buffer_per_input", self.buffer_per_input)
        check_positive("alpha", self.alpha)
        check_positive("islip_iterations", self.islip_iterations)

    @property
    def num_queues(self) -> int:
        """Total VOQs: one per (input, output) pair."""
        return self.num_ports * self.num_ports

    def voq_index(self, input_port: int, output_port: int) -> int:
        """Flat VOQ index; VOQs of one input are adjacent."""
        n = self.num_ports
        if not 0 <= input_port < n or not 0 <= output_port < n:
            raise IndexError(f"port pair ({input_port}, {output_port}) out of range")
        return input_port * n + output_port


@dataclass
class VoqStepCounters:
    """Per-step counters of the input-queued switch."""

    received: np.ndarray  # (N,) per input port
    dropped: np.ndarray  # (N,) per input port (DT/buffer rejections)
    sent: np.ndarray  # (N,) per output port (crossbar transfers)


class IslipScheduler:
    """One-or-more-iteration iSLIP crossbar matching.

    Maintains a grant pointer per output and an accept pointer per input;
    pointers advance past the matched partner only when a match is made in
    the first iteration — the sliding rule that gives iSLIP its fairness
    and desynchronisation properties.
    """

    def __init__(self, num_ports: int, iterations: int = 1):
        check_positive("num_ports", num_ports)
        check_positive("iterations", iterations)
        self.num_ports = num_ports
        self.iterations = iterations
        self._grant_pointer = [0] * num_ports  # per output
        self._accept_pointer = [0] * num_ports  # per input

    @staticmethod
    def _round_robin_pick(candidates: list[int], pointer: int, n: int) -> int:
        """The candidate at or after ``pointer`` in cyclic order."""
        best = min((candidate - pointer) % n for candidate in candidates)
        return (pointer + best) % n

    def match(self, backlog: np.ndarray) -> list[tuple[int, int]]:
        """Compute a crossbar matching for this step.

        ``backlog[i, j]`` is the length of VOQ (input i → output j).
        Returns (input, output) pairs; each input and each output appears
        at most once.
        """
        n = self.num_ports
        if backlog.shape != (n, n):
            raise ValueError(f"backlog must be ({n}, {n}), got {backlog.shape}")
        matched_inputs: set[int] = set()
        matched_outputs: set[int] = set()
        matches: list[tuple[int, int]] = []

        for iteration in range(self.iterations):
            # Request: unmatched inputs request every output with backlog.
            requests: dict[int, list[int]] = {}
            for j in range(n):
                if j in matched_outputs:
                    continue
                requesting = [
                    i
                    for i in range(n)
                    if i not in matched_inputs and backlog[i, j] > 0
                ]
                if requesting:
                    requests[j] = requesting

            # Grant: each output grants the requester at/after its pointer.
            grants: dict[int, list[int]] = {}
            for j, requesting in requests.items():
                granted = self._round_robin_pick(requesting, self._grant_pointer[j], n)
                grants.setdefault(granted, []).append(j)

            # Accept: each input accepts the grant at/after its pointer.
            any_match = False
            for i, granting in grants.items():
                accepted = self._round_robin_pick(granting, self._accept_pointer[i], n)
                matches.append((i, accepted))
                matched_inputs.add(i)
                matched_outputs.add(accepted)
                any_match = True
                if iteration == 0:
                    # Pointers slide only for first-iteration matches.
                    self._grant_pointer[accepted] = (i + 1) % n
                    self._accept_pointer[i] = (accepted + 1) % n
            if not any_match:
                break
        return matches


class VoqSwitch:
    """The input-queued switch: admission, matching, transfer."""

    def __init__(self, config: VoqConfig):
        self.config = config
        n = config.num_ports
        self._buffers = [
            SharedBuffer(config.buffer_per_input, alpha=config.alpha) for _ in range(n)
        ]
        self.voqs: list[OutputQueue] = []
        for i in range(n):
            for j in range(n):
                self.voqs.append(
                    OutputQueue(port=j, qclass=i, buffer=self._buffers[i], alpha=config.alpha)
                )
        self.scheduler = IslipScheduler(n, iterations=config.islip_iterations)
        self.step_count = 0

    def voq(self, input_port: int, output_port: int) -> OutputQueue:
        return self.voqs[self.config.voq_index(input_port, output_port)]

    def backlog(self) -> np.ndarray:
        """(N, N) matrix of VOQ lengths."""
        n = self.config.num_ports
        return np.array(
            [[self.voq(i, j).length for j in range(n)] for i in range(n)],
            dtype=np.int64,
        )

    def step(self, arrivals: list[Packet]) -> VoqStepCounters:
        """One time step: admit arrivals, match, transfer one per match.

        ``Packet.flow_id`` is reused as the *input port* of the arrival
        (the output-queued model has no notion of inputs; rather than
        widen the shared Packet type, the VOQ switch documents this reuse).
        """
        n = self.config.num_ports
        received = np.zeros(n, dtype=np.int64)
        dropped = np.zeros(n, dtype=np.int64)
        sent = np.zeros(n, dtype=np.int64)

        for packet in arrivals:
            input_port = packet.flow_id
            if not 0 <= input_port < n:
                raise ValueError(
                    f"VOQ arrivals carry the input port in flow_id; got {input_port}"
                )
            received[input_port] += 1
            if not self.voq(input_port, packet.dst_port).offer(packet):
                dropped[input_port] += 1

        for input_port, output_port in self.scheduler.match(self.backlog()):
            packet = self.voq(input_port, output_port).dequeue()
            if packet is None:
                raise RuntimeError(
                    f"iSLIP matched empty VOQ ({input_port}, {output_port})"
                )
            sent[output_port] += 1

        self.step_count += 1
        return VoqStepCounters(received=received, dropped=dropped, sent=sent)


@dataclass
class VoqTrace:
    """Fine-grained ground truth of a VOQ simulation.

    Unlike :class:`~repro.switchsim.simulation.SimulationTrace`, this trace
    intentionally has **no** NE ≤ sent invariant: input-queued switches are
    not output-work-conserving, which is the point of the architecture
    comparison.
    """

    config: VoqConfig
    steps_per_bin: int
    qlen: np.ndarray  # (N*N, bins) VOQ lengths at bin end
    received: np.ndarray  # (N, bins) per input
    dropped: np.ndarray  # (N, bins) per input
    sent: np.ndarray  # (N, bins) per output

    @property
    def num_bins(self) -> int:
        return self.qlen.shape[1]

    def output_nonempty(self, output_port: int) -> np.ndarray:
        """Bins in which some VOQ destined to ``output_port`` is non-empty."""
        n = self.config.num_ports
        rows = [self.config.voq_index(i, output_port) for i in range(n)]
        return self.qlen[rows].sum(axis=0) > 0

    def validate(self) -> None:
        assert (self.qlen >= 0).all()
        assert (self.sent <= self.steps_per_bin).all(), "output above line rate"
        assert (self.received >= self.dropped).all()


class VoqSimulation:
    """Drives a traffic generator through the VOQ switch."""

    def __init__(self, config: VoqConfig, traffic, steps_per_bin: int = 16):
        check_positive("steps_per_bin", steps_per_bin)
        self.config = config
        self.traffic = traffic
        self.steps_per_bin = int(steps_per_bin)
        self.switch = VoqSwitch(config)

    def run(self, num_bins: int) -> VoqTrace:
        check_positive("num_bins", num_bins)
        n = self.config.num_ports
        qlen = np.zeros((self.config.num_queues, num_bins), dtype=np.int64)
        received = np.zeros((n, num_bins), dtype=np.int64)
        dropped = np.zeros((n, num_bins), dtype=np.int64)
        sent = np.zeros((n, num_bins), dtype=np.int64)

        for b in range(num_bins):
            for _ in range(self.steps_per_bin):
                counters = self.switch.step(self.traffic.arrivals(self.switch.step_count))
                received[:, b] += counters.received
                dropped[:, b] += counters.dropped
                sent[:, b] += counters.sent
            qlen[:, b] = self.switch.backlog().reshape(-1)

        trace = VoqTrace(
            config=self.config,
            steps_per_bin=self.steps_per_bin,
            qlen=qlen,
            received=received,
            dropped=dropped,
            sent=sent,
        )
        trace.validate()
        return trace
