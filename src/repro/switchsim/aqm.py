"""Pluggable admission (AQM) policies for the shared-buffer switch.

The paper's case study bakes Choudhury & Hahne's Dynamic Threshold (DT)
into the admission path (:mod:`repro.switchsim.buffer`).  The ML-for-AQM
survey taxonomizes a wider design space — probabilistic early drop (RED)
and ECN marking being the canonical non-DT members — so this module
extracts the admission decision behind a strategy interface:

* :class:`DtPolicy` — the paper's Dynamic Threshold, verbatim;
* :class:`RedPolicy` — RED-style probabilistic early drop *inside* the
  DT envelope (DT still bounds every queue, so the PR-2 admission-bound
  oracle stays valid for RED traces);
* :class:`EcnPolicy` — ECN marking: packets above the mark threshold are
  admitted but counted as marked (the congestion signal the endpoints
  would see), again inside the DT envelope.

The default path — ``SwitchConfig.aqm_factory is None`` — never touches
this module: :class:`~repro.switchsim.queues.OutputQueue` keeps calling
``SharedBuffer.admits`` directly, so the DT traces pinned by the golden
fingerprints stay bit-identical.  A non-``None`` factory routes every
admission through :meth:`AqmPolicy.admit` and disqualifies the array
fast path (``ArraySwitchEngine.supports`` returns ``False``), falling
back to the reference engine.

:class:`AqmConfig` is the schema-facing description (primitives only, so
it digests and round-trips through TOML); :meth:`AqmConfig.factory`
turns it into the ``aqm_factory`` callable ``SwitchConfig`` carries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "AQM_DROP",
    "AQM_ADMIT",
    "AQM_ADMIT_MARK",
    "AqmPolicy",
    "DtPolicy",
    "RedPolicy",
    "EcnPolicy",
    "AqmConfig",
]

#: Admission decisions returned by :meth:`AqmPolicy.admit`.
AQM_DROP = 0
AQM_ADMIT = 1
AQM_ADMIT_MARK = 2


class AqmPolicy(abc.ABC):
    """Admission strategy for one switch's shared buffer.

    One policy instance is shared by all queues of a switch (RED's RNG
    stream and the mark/drop counters are per switch, like hardware).
    ``admit`` sees the same four quantities the DT check reads — the
    candidate queue's length and alpha, and the buffer occupancy and
    capacity — and returns one of the ``AQM_*`` decisions.
    """

    def __init__(self) -> None:
        self.early_drops = 0
        self.packets_marked = 0

    @staticmethod
    def dt_admits(
        queue_length: int, alpha: float, occupancy: int, capacity: int
    ) -> bool:
        """The Dynamic-Threshold envelope every policy stays inside."""
        return occupancy < capacity and queue_length < alpha * (capacity - occupancy)

    @abc.abstractmethod
    def admit(
        self, queue_length: int, alpha: float, occupancy: int, capacity: int
    ) -> int:
        """Decide one packet's fate; returns an ``AQM_*`` constant."""

    def reset(self) -> None:
        """Clear counters (and any RNG state) for a fresh run."""
        self.early_drops = 0
        self.packets_marked = 0


class DtPolicy(AqmPolicy):
    """Dynamic Threshold as a policy object.

    Behaviourally identical to the legacy ``aqm_factory=None`` path; it
    exists so differential tests can pin the strategy seam itself.
    """

    def admit(
        self, queue_length: int, alpha: float, occupancy: int, capacity: int
    ) -> int:
        if self.dt_admits(queue_length, alpha, occupancy, capacity):
            return AQM_ADMIT
        return AQM_DROP


class RedPolicy(AqmPolicy):
    """RED-style probabilistic early drop inside the DT envelope.

    Below ``min_th`` packets always enter; from ``min_th`` the drop
    probability ramps linearly to ``max_p`` at ``max_th``, above which
    every packet is dropped early.  The instantaneous queue length
    stands in for RED's EWMA (the simulator steps are already coarse
    relative to packet times).  Early drops are counted separately from
    DT/capacity drops so traces can attribute loss to the policy.
    """

    def __init__(
        self, min_th: float, max_th: float, max_p: float, seed: int = 0
    ) -> None:
        super().__init__()
        if not 0 <= min_th < max_th:
            raise ValueError(
                f"need 0 <= min_th < max_th, got min_th={min_th}, max_th={max_th}"
            )
        if not 0.0 <= max_p <= 1.0:
            raise ValueError(f"max_p must lie in [0, 1], got {max_p}")
        self.min_th = float(min_th)
        self.max_th = float(max_th)
        self.max_p = float(max_p)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def admit(
        self, queue_length: int, alpha: float, occupancy: int, capacity: int
    ) -> int:
        if not self.dt_admits(queue_length, alpha, occupancy, capacity):
            return AQM_DROP
        if queue_length < self.min_th:
            return AQM_ADMIT
        if queue_length >= self.max_th:
            self.early_drops += 1
            return AQM_DROP
        ramp = (queue_length - self.min_th) / (self.max_th - self.min_th)
        if self._rng.random() < self.max_p * ramp:
            self.early_drops += 1
            return AQM_DROP
        return AQM_ADMIT

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self.seed)


class EcnPolicy(AqmPolicy):
    """ECN marking inside the DT envelope: signal congestion, drop nothing.

    Packets joining a queue at or above ``mark_threshold`` are admitted
    with the congestion-experienced bit conceptually set; the simulator
    records the mark count per queue (``OutputQueue.total_marked``)
    rather than mutating the packet, so trace shapes are unchanged.
    """

    def __init__(self, mark_threshold: float) -> None:
        super().__init__()
        if mark_threshold < 0:
            raise ValueError(f"mark_threshold must be >= 0, got {mark_threshold}")
        self.mark_threshold = float(mark_threshold)

    def admit(
        self, queue_length: int, alpha: float, occupancy: int, capacity: int
    ) -> int:
        if not self.dt_admits(queue_length, alpha, occupancy, capacity):
            return AQM_DROP
        if queue_length >= self.mark_threshold:
            self.packets_marked += 1
            return AQM_ADMIT_MARK
        return AQM_ADMIT


@dataclass(frozen=True)
class AqmConfig:
    """Schema-facing AQM description (primitives only, TOML-expressible).

    ``policy`` selects the strategy: ``"dt"`` (the default — and the
    legacy bit-identical path, :meth:`factory` returns ``None``),
    ``"red"``, or ``"ecn"``.  RED thresholds and the ECN mark point are
    *fractions of the shared-buffer capacity*, so one config scales
    across buffer sizes.
    """

    policy: str = "dt"
    red_min_frac: float = 0.15
    red_max_frac: float = 0.5
    red_max_p: float = 0.1
    ecn_mark_frac: float = 0.3
    seed: int = 0

    def __post_init__(self):
        if self.policy not in ("dt", "red", "ecn"):
            raise ValueError(
                f'policy must be "dt", "red", or "ecn", got {self.policy!r}'
            )
        if not 0.0 <= self.red_min_frac < self.red_max_frac <= 1.0:
            raise ValueError(
                "need 0 <= red_min_frac < red_max_frac <= 1, got "
                f"{self.red_min_frac} / {self.red_max_frac}"
            )
        if not 0.0 <= self.red_max_p <= 1.0:
            raise ValueError(f"red_max_p must lie in [0, 1], got {self.red_max_p}")
        if not 0.0 <= self.ecn_mark_frac <= 1.0:
            raise ValueError(
                f"ecn_mark_frac must lie in [0, 1], got {self.ecn_mark_frac}"
            )

    def factory(
        self, buffer_capacity: int
    ) -> Optional[Callable[[], AqmPolicy]]:
        """The ``SwitchConfig.aqm_factory`` for this config.

        Returns ``None`` for ``"dt"`` so the default scenario keeps the
        legacy admission path (and the array fast path) untouched.
        """
        if self.policy == "dt":
            return None
        if self.policy == "red":
            min_th = self.red_min_frac * buffer_capacity
            max_th = self.red_max_frac * buffer_capacity
            max_p = self.red_max_p
            seed = self.seed
            return lambda: RedPolicy(min_th, max_th, max_p, seed=seed)
        mark = self.ecn_mark_frac * buffer_capacity
        return lambda: EcnPolicy(mark)
