"""Shared buffer with Dynamic-Threshold (DT) admission control.

All queues of the switch draw from one packet buffer of ``capacity``
packets.  Admission follows Choudhury & Hahne's Dynamic Threshold
algorithm: a packet may enter queue ``q`` only while

    len(q) < alpha_q * (capacity - total_occupancy)

so the per-queue threshold shrinks as the buffer fills.  This is the
mechanism behind the paper's first insight (§2): *"a longer queue prevents
other queues from growing by taking up space in the buffer"* — the
cross-queue correlation the ML model can learn and the FM model encodes as
the dynamically calculated threshold ``thr_{q,t}``.
"""

from __future__ import annotations

from repro.utils.validation import check_positive


class SharedBuffer:
    """Packet-count shared buffer implementing Dynamic Threshold admission."""

    def __init__(self, capacity: int, alpha: float = 1.0):
        check_positive("capacity", capacity)
        check_positive("alpha", alpha)
        self.capacity = int(capacity)
        self.alpha = float(alpha)
        self._occupancy = 0

    @property
    def occupancy(self) -> int:
        """Total packets currently buffered across all queues."""
        return self._occupancy

    @property
    def free_space(self) -> int:
        """Unoccupied buffer capacity in packets."""
        return self.capacity - self._occupancy

    def threshold(self, alpha: float | None = None) -> float:
        """Current DT admission threshold ``alpha * free_space``.

        A queue whose length is at or above this value must drop arriving
        packets.  ``alpha`` defaults to the buffer-wide parameter but may be
        overridden per queue class (the usual DT generalisation).
        """
        a = self.alpha if alpha is None else alpha
        return a * self.free_space

    def admits(self, queue_length: int, alpha: float | None = None) -> bool:
        """Whether a packet may join a queue of the given current length."""
        if self._occupancy >= self.capacity:
            return False
        return queue_length < self.threshold(alpha)

    def allocate(self) -> None:
        """Account for one packet entering the buffer."""
        if self._occupancy >= self.capacity:
            raise RuntimeError("buffer overflow: allocate() beyond capacity")
        self._occupancy += 1

    def release(self) -> None:
        """Account for one packet leaving the buffer."""
        if self._occupancy <= 0:
            raise RuntimeError("buffer underflow: release() on empty buffer")
        self._occupancy -= 1

    def reset(self) -> None:
        """Empty the buffer accounting (queues must be cleared separately)."""
        self._occupancy = 0
