"""On-disk cache of simulation traces, keyed by a content hash.

Simulating long traces is the expensive step of dataset generation: every
benchmark or training re-run of an unchanged scenario repeats the exact
same deterministic simulation.  :class:`TraceCache` persists traces as
``.npz`` archives (via :mod:`repro.switchsim.io`) under a content hash of
the *parameters that determine the trace* — switch configuration, traffic
generator parameters, seed, and duration — so repeated runs skip the
simulation entirely.

Keying and invalidation
-----------------------

Keys come from :func:`repro.config.config_digest` — the same canonical
content hash that scopes Table-1 journals and fingerprints training
checkpoints — over the parameter mapping with :data:`TRACE_CACHE_VERSION`
mixed in.  Bump the version whenever the simulator or a traffic
generator changes behaviour for the same parameters — every old entry
then misses (stale files are simply never read again and can be
garbage-collected with :meth:`TraceCache.clear`).  Callers that change
*their* trace-producing code independently of this module should include
their own revision marker in the params (see ``traffic_rev`` in
:mod:`repro.eval.scenarios`).

Entries written before the unified digest existed (PR 1–3) used a
different hash of the same canonical encoding; :meth:`TraceCache.get`
transparently re-maps such entries to their new key on first access
(:func:`legacy_trace_key`), so adopting the unified digest does not
invalidate warm on-disk caches.

The cache directory defaults to the ``REPRO_TRACE_CACHE`` environment
variable, falling back to ``~/.cache/repro/traces``.  Writes go through a
temporary file plus :func:`os.replace`, so concurrent writers (e.g. the
workers of :mod:`repro.eval.parallel`) at worst do redundant work, never
corrupt an entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
import zipfile
from pathlib import Path
from typing import Any, Mapping, Union

import repro.obs as obs
from repro.config import canonicalize, config_digest
from repro.switchsim.io import load_trace, save_trace
from repro.switchsim.simulation import SimulationTrace

PathLike = Union[str, Path]

#: Bump to invalidate every existing cache entry (simulator semantics change).
TRACE_CACHE_VERSION = 1

_ENV_VAR = "REPRO_TRACE_CACHE"
_DEFAULT_ROOT = "~/.cache/repro/traces"


def trace_key(params: Mapping[str, Any]) -> str:
    """Content hash of a parameter mapping (stable across processes).

    Delegates to :func:`repro.config.config_digest`, so the trace cache,
    the Table-1 journal scope, and checkpoint fingerprints all share one
    canonicalization — two runs agree on "same experiment" everywhere or
    nowhere.
    """
    payload = {
        "__trace_cache_version__": TRACE_CACHE_VERSION,
        "params": dict(params),
    }
    return config_digest(payload, kind="trace_cache")[:32]


def legacy_trace_key(params: Mapping[str, Any]) -> str:
    """The PR 1–3 key scheme, kept verbatim for on-disk cache migration.

    :meth:`TraceCache.get` uses this to find entries written before
    :func:`repro.config.config_digest` unified the hashing paths and
    adopt them under their new key (an ``os.replace``, not a copy).
    """
    payload = {
        "__trace_cache_version__": TRACE_CACHE_VERSION,
        "params": canonicalize(dict(params)),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:32]


class TraceCache:
    """Content-addressed store of :class:`SimulationTrace` archives.

    Tracks ``hits``/``misses``/``stores`` counters so callers (and tests)
    can assert that a re-run skipped simulation entirely.
    """

    def __init__(self, root: PathLike | None = None):
        if root is None:
            root = os.environ.get(_ENV_VAR) or _DEFAULT_ROOT
        self.root = Path(root).expanduser()
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"trace cache root exists but is not a directory: {self.root}"
            )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self.migrated = 0  # legacy-key entries adopted under their new key

    def cache_stats(self) -> dict[str, int]:
        """This instance's lifetime counters as a plain dict.

        The same numbers stream into the :mod:`repro.obs` metrics
        registry (``cache.hits``/``cache.misses``/...) when metrics are
        enabled; the accessor works regardless, so tests and callers can
        assert cache behaviour without turning observability on.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "migrated": self.migrated,
        }

    def path_for(self, params: Mapping[str, Any]) -> Path:
        """The archive path a parameter mapping hashes to."""
        return self.root / f"{trace_key(params)}.npz"

    def get(self, params: Mapping[str, Any]) -> SimulationTrace | None:
        """The cached trace for ``params``, or None (counting hit/miss).

        An unreadable or corrupt entry counts as a miss: the bad file is
        moved aside to ``<root>/quarantine/`` with a warning (so the
        evidence survives for diagnosis and the next ``put`` re-populates
        the slot cleanly) and the caller re-simulates.  A truncated
        ``.npz`` must never kill a sweep — it costs one re-simulation.

        An entry stored under the pre-unification key scheme (PR 1–3) is
        adopted in place: renamed to its :func:`trace_key` path and read
        normally, so a warm cache survives the digest migration without
        a single re-simulation.
        """
        with obs.span("cache.get") as span:
            path = self.path_for(params)
            if not path.exists():
                self._adopt_legacy_entry(params, path)
            if path.exists():
                try:
                    trace = load_trace(path)
                # BadZipFile (a truncated archive) subclasses Exception
                # directly, not OSError/ValueError.
                except (
                    OSError,
                    ValueError,
                    KeyError,
                    AssertionError,
                    zipfile.BadZipFile,
                ) as exc:
                    self._quarantine(path, exc)
                else:
                    self.hits += 1
                    obs.counter("cache.hits").inc()
                    span.annotate(outcome="hit")
                    return trace
            self.misses += 1
            obs.counter("cache.misses").inc()
            span.annotate(outcome="miss")
            return None

    def _adopt_legacy_entry(self, params: Mapping[str, Any], path: Path) -> None:
        """Re-map a PR-3-era cache entry to its unified-digest key."""
        legacy = self.root / f"{legacy_trace_key(params)}.npz"
        if not legacy.exists():
            return
        try:
            os.replace(legacy, path)
        except OSError:
            # A concurrent reader may have adopted it first; if the new
            # path now exists the caller still gets its hit, otherwise
            # this is simply the miss it would have been.
            return
        self.migrated += 1
        obs.counter("cache.migrated").inc()

    def _quarantine(self, path: Path, exc: BaseException) -> None:
        """Move an unreadable entry out of the addressable namespace."""
        destination = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            note = f"moved to {destination}"
        except OSError:
            # A concurrent reader may have quarantined it first; losing
            # the race (or an unwritable directory) must not raise — the
            # entry is simply treated as the miss it is.
            note = "could not be moved"
        self.quarantined += 1
        obs.counter("cache.quarantined").inc()
        warnings.warn(
            f"trace cache entry {path.name} is unreadable "
            f"({type(exc).__name__}: {exc}); {note}, will re-simulate",
            RuntimeWarning,
            stacklevel=3,
        )

    @property
    def quarantine_dir(self) -> Path:
        """Where unreadable entries are moved (``<root>/quarantine``)."""
        return self.root / "quarantine"

    def put(self, params: Mapping[str, Any], trace: SimulationTrace) -> Path:
        """Store ``trace`` under the hash of ``params`` (atomic replace)."""
        with obs.span("cache.put"):
            path = self.path_for(params)
            self.root.mkdir(parents=True, exist_ok=True)
            # np.savez appends ".npz" to other suffixes, so keep it explicit.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=path.stem, suffix=".tmp.npz"
            )
            os.close(fd)
            try:
                save_trace(trace, tmp_name)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stores += 1
            obs.counter("cache.stores").inc()
            return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.root.exists():
            return 0
        removed = 0
        for entry in self.root.glob("*.npz"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*.npz"))
