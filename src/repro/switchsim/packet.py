"""Packet record used by the switch simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Packet:
    """A fixed-size packet traversing the switch.

    Attributes:
        dst_port: output port index the packet is forwarded to.
        qclass: which of the port's queues it joins (0 = high priority).
        flow_id: identifier of the generating flow (telemetry/debugging).
        arrival_step: simulator time step at which the packet arrived.
    """

    dst_port: int
    qclass: int = 0
    flow_id: int = -1
    arrival_step: int = -1
