"""Work-conserving per-port schedulers.

Every scheduler here is *work-conserving*: if any queue of the port holds a
packet, one packet is transmitted this time step.  That property is exactly
what constraint C3 of the paper exploits — the number of steps a port has
some non-empty queue lower-bounds its SNMP sent count.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.switchsim.queues import OutputQueue


class Scheduler(ABC):
    """Chooses which of a port's queues transmits this step."""

    @abstractmethod
    def select(self, queues: Sequence[OutputQueue]) -> Optional[int]:
        """Return the index of the queue to dequeue, or None if all empty."""


class StrictPriorityScheduler(Scheduler):
    """Always serves the lowest-index non-empty queue (class 0 first)."""

    def select(self, queues: Sequence[OutputQueue]) -> Optional[int]:
        for i, queue in enumerate(queues):
            if not queue.is_empty:
                return i
        return None


class RoundRobinScheduler(Scheduler):
    """Serves non-empty queues in cyclic order, skipping empty ones.

    Skipping empty queues (rather than wasting the slot) keeps the
    scheduler work-conserving.
    """

    def __init__(self):
        self._next = 0

    def select(self, queues: Sequence[OutputQueue]) -> Optional[int]:
        n = len(queues)
        if n == 0:
            return None
        for offset in range(n):
            idx = (self._next + offset) % n
            if not queues[idx].is_empty:
                self._next = (idx + 1) % n
                return idx
        return None


class DeficitRoundRobinScheduler(Scheduler):
    """Deficit round robin with per-queue quantum, in packets.

    With unit-size packets DRR degenerates to weighted round robin; it is
    included because the paper's switches serve queues of different classes
    and DRR is the standard way to give them weighted shares while staying
    work-conserving.
    """

    def __init__(self, quanta: Sequence[int]):
        if not quanta or any(q <= 0 for q in quanta):
            raise ValueError(f"quanta must be positive, got {quanta}")
        self._quanta = list(quanta)
        self._deficits = [0] * len(quanta)
        self._next = 0

    def select(self, queues: Sequence[OutputQueue]) -> Optional[int]:
        n = len(queues)
        if n != len(self._quanta):
            raise ValueError(
                f"scheduler configured for {len(self._quanta)} queues, got {n}"
            )
        if all(q.is_empty for q in queues):
            # Reset deficits when idle so stale credit does not accumulate.
            self._deficits = [0] * n
            return None
        # At most 2n probes: each queue's deficit is topped up once per pass.
        for _ in range(2 * n):
            idx = self._next
            queue = queues[idx]
            if queue.is_empty:
                self._deficits[idx] = 0
                self._next = (idx + 1) % n
                continue
            if self._deficits[idx] <= 0:
                self._deficits[idx] += self._quanta[idx]
            if self._deficits[idx] > 0:
                self._deficits[idx] -= 1
                if self._deficits[idx] <= 0 or queue.length == 1:
                    self._next = (idx + 1) % n
                return idx
            self._next = (idx + 1) % n
        # Work conservation fallback; unreachable with positive quanta.
        for i, queue in enumerate(queues):
            if not queue.is_empty:
                return i
        return None
