"""Multi-switch leaf-spine fabric composed from shared-buffer switches.

The paper's case study is a single output-queued switch; its FM argument
(C1–C3 hold per queue) is topology-agnostic.  This module composes the
existing switch core into a two-tier leaf-spine fabric so the same
telemetry/imputation pipeline can run per (switch, queue):

* :class:`TopologyConfig` — the schema-facing description (primitives
  only): ``leaves`` leaf switches with ``hosts_per_leaf`` host-facing
  ports each, ``spines`` spine switches, every leaf linked to every
  spine, and ``link_delay`` time steps of propagation per hop.
* :class:`Fabric` — the driver.  Each switch runs the exact inner loop
  of :class:`~repro.switchsim.engine.ArraySwitchEngine` (ring buffers of
  arrival timestamps, flat Python-list state, sequential DT admission,
  the same round-robin pointer updates), extended with a parallel ring
  of *destination tags* so a departing packet can be forwarded to the
  peer switch.  A 1-leaf, 0-spine fabric is therefore bit-identical to
  the single-switch :class:`~repro.switchsim.simulation.Simulation` —
  the differential test in ``tests/switchsim/test_fabric.py`` pins it.
* :class:`FabricTrace` — one :class:`~repro.switchsim.simulation.
  SimulationTrace` per switch (keyed ``leaf0..``, ``spine0..``), so all
  downstream telemetry/dataset code applies per switch unchanged.

Scheduling across switches is conservatively parallel: with a link
delay of ``D`` steps, any packet departing during a round of ``D``
steps arrives at its peer only in a later round, so each switch can
process a whole round independently; rounds are processed in a fixed
switch order (leaves, then spines) and forwarded packets are delivered
sorted by arrival step (stable, so simultaneous arrivals keep the
source order) — making the whole fabric deterministic.

Routing is the canonical leaf-spine walk: a packet for global host
``h`` exits its source leaf either on the local host port
(``h % hosts_per_leaf``) or on the uplink to spine ``h % spines``;
the spine forwards on its down-port to leaf ``h // hosts_per_leaf``,
which delivers on the local host port.  Every hop enqueues into the
egress port's queue of the packet's class, under that switch's own
shared buffer and admission policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.switchsim.aqm import AQM_ADMIT_MARK, AQM_DROP, AqmConfig, AqmPolicy
from repro.switchsim.engine import EngineUnsupported, _scheduler_mode
from repro.switchsim.simulation import SimulationTrace
from repro.switchsim.switch import SwitchConfig
from repro.utils.validation import check_positive

#: Target number of steps per external-arrival materialisation chunk
#: (same order as the array engine's chunking; exact value is free
#: because ``arrivals_batch`` is split-invariant by contract).
_FEED_CHUNK = 8192


@dataclass(frozen=True)
class TopologyConfig:
    """Static description of a leaf-spine fabric (TOML-expressible).

    ``leaves == 1, spines == 0`` degenerates to a single switch — the
    configuration the differential test pins against ``Simulation``.
    Hosts are numbered globally: host ``h`` sits on leaf
    ``h // hosts_per_leaf``, local port ``h % hosts_per_leaf``.
    """

    leaves: int = 2
    spines: int = 1
    hosts_per_leaf: int = 2
    link_delay: int = 2
    queues_per_port: int = 2
    buffer_capacity: int = 80
    alphas: tuple[float, ...] = (1.0, 0.5)

    def __post_init__(self):
        check_positive("leaves", self.leaves)
        check_positive("hosts_per_leaf", self.hosts_per_leaf)
        check_positive("link_delay", self.link_delay)
        check_positive("queues_per_port", self.queues_per_port)
        check_positive("buffer_capacity", self.buffer_capacity)
        if self.spines < 0:
            raise ValueError(f"spines must be >= 0, got {self.spines}")
        if self.spines == 0 and self.leaves > 1:
            raise ValueError("a multi-leaf fabric needs at least one spine")
        if len(self.alphas) != self.queues_per_port:
            raise ValueError(
                f"need one alpha per queue class: got {len(self.alphas)} alphas "
                f"for {self.queues_per_port} queues"
            )

    @property
    def total_hosts(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def num_switches(self) -> int:
        return self.leaves + self.spines

    @property
    def leaf_ports(self) -> int:
        """Ports per leaf: host-facing first, then one uplink per spine."""
        return self.hosts_per_leaf + self.spines

    def leaf_of(self, host: int) -> int:
        return host // self.hosts_per_leaf

    def leaf_egress(self, leaf: int, host: int) -> int:
        """Egress port at ``leaf`` for a packet addressed to ``host``."""
        if self.leaf_of(host) == leaf:
            return host % self.hosts_per_leaf
        return self.hosts_per_leaf + host % self.spines

    def spine_egress(self, host: int) -> int:
        """Egress (down-)port at any spine for a packet to ``host``."""
        return self.leaf_of(host)

    def switch_names(self) -> list[str]:
        """All switch identifiers, in processing order (leaves, spines)."""
        return [f"leaf{i}" for i in range(self.leaves)] + [
            f"spine{i}" for i in range(self.spines)
        ]


def fabric_switch_configs(
    topology: TopologyConfig, aqm: AqmConfig | None = None
) -> dict[str, SwitchConfig]:
    """Per-switch :class:`SwitchConfig`, keyed by switch name.

    With an :class:`~repro.switchsim.aqm.AqmConfig` whose policy is not
    ``"dt"``, every switch gets its own policy instance; RED instances
    are seeded per switch (``aqm.seed + switch index``) so the drop
    streams are independent but deterministic.
    """
    configs: dict[str, SwitchConfig] = {}
    for index, name in enumerate(topology.switch_names()):
        num_ports = topology.leaf_ports if name.startswith("leaf") else topology.leaves
        factory = None
        if aqm is not None:
            import dataclasses as _dc

            factory = _dc.replace(aqm, seed=aqm.seed + index).factory(
                topology.buffer_capacity
            )
        configs[name] = SwitchConfig(
            num_ports=num_ports,
            queues_per_port=topology.queues_per_port,
            buffer_capacity=topology.buffer_capacity,
            alphas=topology.alphas,
            aqm_factory=factory,
        )
    return configs


@dataclass
class FabricTrace:
    """Per-switch fine-grained ground truth of one fabric run."""

    topology: TopologyConfig
    steps_per_bin: int
    switches: dict[str, SimulationTrace]

    @property
    def num_bins(self) -> int:
        first = next(iter(self.switches.values()))
        return first.num_bins

    def validate(self) -> None:
        for trace in self.switches.values():
            trace.validate()

    def total_dropped(self) -> int:
        return int(sum(t.dropped.sum() for t in self.switches.values()))

    def total_sent(self) -> int:
        return int(sum(t.sent.sum() for t in self.switches.values()))


class _SwitchCore:
    """One switch's array state inside a fabric.

    A transliteration of :class:`~repro.switchsim.engine.
    ArraySwitchEngine`'s inner loop with two extensions: a parallel ring
    of destination tags (``host * queues_per_port + qclass``) so
    departures can be forwarded, and persistent per-bin accumulators so
    a bin may span several conservative rounds.  Admission optionally
    routes through a shared :class:`~repro.switchsim.aqm.AqmPolicy`;
    ``None`` keeps the inline DT check — the engine's exact expression.
    """

    def __init__(
        self,
        config: SwitchConfig,
        steps_per_bin: int,
        num_bins: int,
        link_ports: frozenset[int],
    ):
        mode = _scheduler_mode(config)
        if mode is None:
            raise EngineUnsupported(
                "fabric switches support RoundRobinScheduler and "
                "StrictPriorityScheduler only"
            )
        self.config = config
        capacity = config.buffer_capacity
        num_queues = config.num_queues
        self.policy: AqmPolicy | None = (
            config.aqm_factory() if config.aqm_factory is not None else None
        )
        self.link_ports = link_ports
        self._rings: list[list[int]] = [[0] * capacity for _ in range(num_queues)]
        self._tags: list[list[int]] = [[0] * capacity for _ in range(num_queues)]
        self._heads = [0] * num_queues
        self._tails = [0] * num_queues
        self._lengths = [0] * num_queues
        self._occupancy = 0
        self._rr_next = [0] * config.num_ports
        self._rr_mask = 1 if mode == "rr" else 0
        self._alphas = [
            float(config.alphas[i % config.queues_per_port]) for i in range(num_queues)
        ]
        self.steps_per_bin = steps_per_bin
        # Whole-run outputs, filled one bin column at a time.
        self.qlen = np.zeros((num_queues, num_bins), dtype=np.int64)
        self.qlen_max = np.zeros((num_queues, num_bins), dtype=np.int64)
        self.received = np.zeros((config.num_ports, num_bins), dtype=np.int64)
        self.sent = np.zeros((config.num_ports, num_bins), dtype=np.int64)
        self.dropped = np.zeros((config.num_ports, num_bins), dtype=np.int64)
        self.delay_sum = np.zeros((config.num_ports, num_bins), dtype=np.int64)
        self.buffer_occupancy = np.zeros(num_bins, dtype=np.int64)
        # Per-bin accumulators persist across rounds (a bin may straddle
        # several conservative rounds when link_delay < steps_per_bin).
        self._bin_started = False
        self._bin_max = [0] * num_queues
        self._recv_b = [0] * config.num_ports
        self._sent_b = [0] * config.num_ports
        self._drop_b = [0] * config.num_ports
        self._delay_b = [0] * config.num_ports

    def _flush_bin(self, b: int) -> None:
        lengths = self._lengths
        self.qlen[:, b] = lengths
        self.qlen_max[:, b] = self._bin_max if self._bin_started else lengths
        self.received[:, b] = self._recv_b
        self.sent[:, b] = self._sent_b
        self.dropped[:, b] = self._drop_b
        self.delay_sum[:, b] = self._delay_b
        self.buffer_occupancy[b] = self._occupancy
        self._bin_started = False
        num_ports = self.config.num_ports
        self._recv_b = [0] * num_ports
        self._sent_b = [0] * num_ports
        self._drop_b = [0] * num_ports
        self._delay_b = [0] * num_ports

    def run_span(
        self, start: int, end: int, arrivals: list[tuple[int, int, int, int]]
    ) -> list[tuple[int, int, int]]:
        """Process steps ``[start, end)`` given ``(step, qidx, port, tag)``
        arrivals sorted by step; returns departures ``(step, port, tag)``
        on link ports."""
        cfg = self.config
        capacity = cfg.buffer_capacity
        num_ports = cfg.num_ports
        queues_per_port = cfg.queues_per_port
        steps_per_bin = self.steps_per_bin
        rings = self._rings
        tags = self._tags
        heads = self._heads
        tails = self._tails
        lengths = self._lengths
        rr_next = self._rr_next
        rr_mask = self._rr_mask
        alphas = self._alphas
        policy = self.policy
        occ = self._occupancy
        link_ports = self.link_ports
        recv_b = self._recv_b
        sent_b = self._sent_b
        drop_b = self._drop_b
        delay_b = self._delay_b
        bin_max = self._bin_max
        bin_started = self._bin_started
        port_range = range(num_ports)
        qclass_range = range(queues_per_port)

        emissions: list[tuple[int, int, int]] = []
        cursor = 0
        num_packets = len(arrivals)
        step = start
        while step < end:
            if occ == 0 and (cursor >= num_packets or arrivals[cursor][0] > step):
                # Idle stretch: nothing buffered, nothing arriving yet.
                target = end if cursor >= num_packets else min(
                    arrivals[cursor][0], end
                )
                while step < target:
                    step += 1
                    if step % steps_per_bin == 0:
                        self._occupancy = occ
                        self._bin_max = bin_max
                        self._bin_started = bin_started
                        self._flush_bin(step // steps_per_bin - 1)
                        bin_started = False
                        recv_b = self._recv_b
                        sent_b = self._sent_b
                        drop_b = self._drop_b
                        delay_b = self._delay_b
                continue
            touched: list[int] = []
            # --- arrivals: sequential admission (DT or policy) ---
            while cursor < num_packets and arrivals[cursor][0] == step:
                _, qi, port, tag = arrivals[cursor]
                recv_b[port] += 1
                if policy is not None:
                    decision = policy.admit(lengths[qi], alphas[qi], occ, capacity)
                    admitted = decision != AQM_DROP
                else:
                    admitted = occ < capacity and lengths[qi] < alphas[qi] * (
                        capacity - occ
                    )
                if admitted:
                    tail = tails[qi]
                    rings[qi][tail] = step
                    tags[qi][tail] = tag
                    tails[qi] = tail + 1 if tail + 1 < capacity else 0
                    lengths[qi] += 1
                    occ += 1
                    touched.append(qi)
                else:
                    drop_b[port] += 1
                cursor += 1
            # --- departures: one packet per port at line rate ---
            if occ:
                for port in port_range:
                    base = port * queues_per_port
                    pointer = rr_next[port]
                    for probe in qclass_range:
                        offset = pointer + probe
                        if offset >= queues_per_port:
                            offset -= queues_per_port
                        qi = base + offset
                        if lengths[qi]:
                            head = heads[qi]
                            arrival = rings[qi][head]
                            tag = tags[qi][head]
                            heads[qi] = head + 1 if head + 1 < capacity else 0
                            lengths[qi] -= 1
                            occ -= 1
                            sent_b[port] += 1
                            delay_b[port] += step - arrival
                            next_offset = offset + 1
                            if next_offset >= queues_per_port:
                                next_offset = 0
                            rr_next[port] = next_offset * rr_mask
                            touched.append(qi)
                            if port in link_ports:
                                emissions.append((step, port, tag))
                            break
            # --- per-bin max of the post-departure lengths ---
            if not bin_started:
                bin_max = lengths[:]
                bin_started = True
            else:
                for qi in touched:
                    length = lengths[qi]
                    if length > bin_max[qi]:
                        bin_max[qi] = length
            step += 1
            if step % steps_per_bin == 0:
                self._occupancy = occ
                self._bin_max = bin_max
                self._bin_started = bin_started
                self._flush_bin(step // steps_per_bin - 1)
                bin_started = False
                recv_b = self._recv_b
                sent_b = self._sent_b
                drop_b = self._drop_b
                delay_b = self._delay_b

        self._occupancy = occ
        self._bin_max = bin_max
        self._bin_started = bin_started
        return emissions

    def trace(self) -> SimulationTrace:
        trace = SimulationTrace(
            config=self.config,
            steps_per_bin=self.steps_per_bin,
            qlen=self.qlen,
            qlen_max=self.qlen_max,
            received=self.received,
            sent=self.sent,
            dropped=self.dropped,
            delay_sum=self.delay_sum,
            buffer_occupancy=self.buffer_occupancy,
        )
        trace.validate()
        return trace


class _ExternalFeed:
    """Chunked materialisation of one leaf's external traffic.

    Packets address *global hosts* (``dst_port`` in
    ``[0, total_hosts)``); the feed resolves each to the leaf's local
    egress queue.  Materialisation chunking cannot change the stream:
    ``arrivals_batch`` is split-invariant by contract (and the per-step
    fallback trivially so).
    """

    def __init__(self, traffic, topology: TopologyConfig, leaf: int, total_steps: int):
        self._traffic = traffic
        self._topology = topology
        self._leaf = leaf
        self._total_steps = total_steps
        self._buffer: list[tuple[int, int, int, int]] = []
        self._pos = 0
        self._next_step = 0

    def _route(self, step: int, host: int, qclass: int) -> tuple[int, int, int, int]:
        topo = self._topology
        if not 0 <= host < topo.total_hosts:
            raise IndexError(
                f"arrival out of range: dst host {host} for "
                f"{topo.total_hosts} fabric hosts"
            )
        if not 0 <= qclass < topo.queues_per_port:
            raise IndexError(
                f"arrival out of range: qclass {qclass} for "
                f"{topo.queues_per_port} queues"
            )
        port = topo.leaf_egress(self._leaf, host)
        tag = host * topo.queues_per_port + qclass
        return (step, port * topo.queues_per_port + qclass, port, tag)

    def _materialize(self, num_steps: int) -> None:
        start = self._next_step
        traffic = self._traffic
        if traffic.can_batch():
            steps, dsts, qclasses = traffic.arrivals_batch(start, num_steps)
            route = self._route
            self._buffer.extend(
                route(int(s), int(h), int(q))
                for s, h, q in zip(steps.tolist(), dsts.tolist(), qclasses.tolist())
            )
        else:
            route = self._route
            for step in range(start, start + num_steps):
                for packet in traffic.arrivals(step):
                    self._buffer.append(route(step, packet.dst_port, packet.qclass))
        self._next_step = start + num_steps

    def take(self, t0: int, t1: int) -> list[tuple[int, int, int, int]]:
        """Arrivals with step in ``[t0, t1)``, in generator order."""
        while self._next_step < t1:
            chunk = max(_FEED_CHUNK, t1 - self._next_step)
            chunk = min(chunk, self._total_steps - self._next_step)
            self._materialize(chunk)
        if self._pos >= len(self._buffer) and self._pos:
            self._buffer = []
            self._pos = 0
        out: list[tuple[int, int, int, int]] = []
        pos = self._pos
        buffer = self._buffer
        size = len(buffer)
        while pos < size and buffer[pos][0] < t1:
            out.append(buffer[pos])
            pos += 1
        self._pos = pos
        return out


class Fabric:
    """Runs external traffic through a leaf-spine fabric of switches.

    ``leaf_traffic`` supplies one :class:`~repro.traffic.generators.
    TrafficGenerator` per leaf whose packets address global hosts
    (``dst_port`` in ``[0, total_hosts)``).  ``aqm`` optionally selects
    a non-DT admission policy for every switch.  With
    ``selfcheck=True`` each per-switch trace runs the invariant oracles
    after the run.
    """

    def __init__(
        self,
        topology: TopologyConfig,
        leaf_traffic,
        *,
        steps_per_bin: int = 16,
        aqm: AqmConfig | None = None,
        selfcheck: bool = False,
    ):
        check_positive("steps_per_bin", steps_per_bin)
        if len(leaf_traffic) != topology.leaves:
            raise ValueError(
                f"need one traffic generator per leaf: got {len(leaf_traffic)} "
                f"for {topology.leaves} leaves"
            )
        self.topology = topology
        self.leaf_traffic = list(leaf_traffic)
        self.steps_per_bin = int(steps_per_bin)
        self.aqm = aqm
        self.selfcheck = bool(selfcheck)
        self.switch_configs = fabric_switch_configs(topology, aqm)

    def run(self, num_bins: int) -> FabricTrace:
        """Simulate ``num_bins`` fine-grained bins on every switch."""
        check_positive("num_bins", num_bins)
        with obs.span(
            "switchsim.fabric.run",
            num_bins=int(num_bins),
            switches=self.topology.num_switches,
        ):
            return self._run(num_bins)

    def _run(self, num_bins: int) -> FabricTrace:
        topo = self.topology
        spb = self.steps_per_bin
        total_steps = num_bins * spb
        qpp = topo.queues_per_port
        names = topo.switch_names()
        cores: dict[str, _SwitchCore] = {}
        for name in names:
            config = self.switch_configs[name]
            if name.startswith("leaf"):
                link_ports = frozenset(
                    range(topo.hosts_per_leaf, topo.hosts_per_leaf + topo.spines)
                )
            else:
                link_ports = frozenset(range(topo.leaves))
            cores[name] = _SwitchCore(config, spb, num_bins, link_ports)

        feeds = {
            f"leaf{i}": _ExternalFeed(self.leaf_traffic[i], topo, i, total_steps)
            for i in range(topo.leaves)
        }
        pending: dict[str, list[tuple[int, int, int, int]]] = {
            name: [] for name in names
        }
        delay = topo.link_delay
        t0 = 0
        while t0 < total_steps:
            t1 = min(t0 + delay, total_steps)
            emitted: dict[str, list[tuple[int, int, int]]] = {}
            for name in names:
                forwarded = pending[name]
                if name in feeds:
                    external = feeds[name].take(t0, t1)
                    if forwarded:
                        # Stable by step; equal-step external precedes
                        # forwarded (both keep their own order).
                        arrivals = external + forwarded
                        arrivals.sort(key=_by_step)
                    else:
                        arrivals = external
                else:
                    arrivals = forwarded
                emitted[name] = cores[name].run_span(t0, t1, arrivals)
            next_pending: dict[str, list[tuple[int, int, int, int]]] = {
                name: [] for name in names
            }
            for src_index, name in enumerate(names):
                is_leaf = name.startswith("leaf")
                for dep_step, port, tag in emitted[name]:
                    arrival = dep_step + delay
                    if arrival >= total_steps:
                        continue
                    host = tag // qpp
                    qclass = tag - host * qpp
                    if is_leaf:
                        peer = f"spine{port - topo.hosts_per_leaf}"
                        out_port = topo.spine_egress(host)
                    else:
                        peer = f"leaf{port}"
                        out_port = host % topo.hosts_per_leaf
                    next_pending[peer].append(
                        (arrival, out_port * qpp + qclass, out_port, tag)
                    )
            for name in names:
                # Emissions are gathered per source in (step, port) order;
                # the concatenation across sources needs a stable re-sort
                # by arrival step (ties keep source order — deterministic).
                next_pending[name].sort(key=_by_step)
            pending = next_pending
            t0 = t1

        traces = {name: cores[name].trace() for name in names}
        fabric_trace = FabricTrace(topology=topo, steps_per_bin=spb, switches=traces)
        if self.selfcheck:
            self._selfcheck(fabric_trace)
        return fabric_trace

    def _selfcheck(self, fabric_trace: FabricTrace) -> None:
        from repro.testing.selfcheck import selfcheck_trace  # deferred: cycle

        for name, trace in fabric_trace.switches.items():
            selfcheck_trace(
                trace,
                repro={
                    "engine": "fabric",
                    "switch": name,
                    "steps_per_bin": self.steps_per_bin,
                    "num_bins": trace.num_bins,
                    "topology": {
                        "leaves": self.topology.leaves,
                        "spines": self.topology.spines,
                        "hosts_per_leaf": self.topology.hosts_per_leaf,
                        "link_delay": self.topology.link_delay,
                    },
                    "aqm": self.aqm.policy if self.aqm is not None else "dt",
                },
            )


def _by_step(record: tuple[int, int, int, int]) -> int:
    return record[0]
