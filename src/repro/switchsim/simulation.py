"""Simulation driver: traffic generator → switch → recorded trace.

The driver runs the switch at packet-time-step granularity and aggregates
the result into the paper's *fine-grained* (per-millisecond) ground truth:

* ``qlen``       — instantaneous queue length at the end of each ms bin,
* ``qlen_max``   — maximum queue length observed inside each ms bin,
* ``received`` / ``sent`` / ``dropped`` — per-port packet counts per bin.

The quantity ``NE_i`` of constraint C3 (bins in which some queue of port i
is non-empty) is derived from ``qlen`` via
:meth:`SimulationTrace.port_nonempty`; because each step dequeues *after*
arrivals, a queue that is non-empty at a bin's end necessarily transmitted
during that bin, so ``NE_i <= sent_i`` holds exactly on the ground truth.

Choosing 1 ms as the fine granularity follows the paper (§4, "we choose
1 ms as our fine granularity to reduce noise as in [24]").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

import repro.obs as obs
from repro.switchsim.switch import OutputQueuedSwitch, SwitchConfig
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # avoid a circular import: traffic depends on switchsim
    from repro.traffic.generators import TrafficGenerator


@dataclass
class SimulationTrace:
    """Fine-grained ground truth produced by :class:`Simulation`.

    All arrays are indexed by fine-grained bin (1 ms in the paper's setup);
    ``qlen``/``qlen_max`` additionally by flat queue index and the port
    counters by port index.
    """

    config: SwitchConfig
    steps_per_bin: int
    qlen: np.ndarray  # (num_queues, bins) instantaneous length at bin end
    qlen_max: np.ndarray  # (num_queues, bins) max length within bin
    received: np.ndarray  # (num_ports, bins)
    sent: np.ndarray  # (num_ports, bins)
    dropped: np.ndarray  # (num_ports, bins)
    delay_sum: np.ndarray  # (num_ports, bins) summed per-packet delays, steps
    buffer_occupancy: np.ndarray  # (bins,) occupancy at bin end

    @property
    def num_bins(self) -> int:
        return self.qlen.shape[1]

    @property
    def num_queues(self) -> int:
        return self.qlen.shape[0]

    @property
    def num_ports(self) -> int:
        return self.sent.shape[0]

    def mean_delay(self, port: int) -> np.ndarray:
        """Per-bin mean queueing delay (in time steps) of transmitted
        packets on ``port``; zero for bins with no departures."""
        sent = self.sent[port]
        out = np.zeros_like(sent, dtype=float)
        busy = sent > 0
        out[busy] = self.delay_sum[port, busy] / sent[busy]
        return out

    def port_nonempty(self, port: int) -> np.ndarray:
        """Boolean per-bin series: some queue of ``port`` non-empty at bin end.

        Summing this over a coarse interval gives the ground-truth ``NE_i``
        of constraint C3.
        """
        idx = list(self.config.queues_of_port(port))
        return self.qlen[idx].sum(axis=0) > 0

    def validate(self) -> None:
        """Check internal invariants; raises AssertionError on violation.

        These are the ground-truth counterparts of the paper's constraints:
        queue lengths are non-negative, the per-bin max dominates the
        instantaneous sample, and work conservation bounds sent counts.
        """
        assert (self.qlen >= 0).all(), "negative queue length"
        assert (self.qlen_max >= self.qlen).all(), "bin max below instantaneous sample"
        assert (self.sent >= 0).all() and (self.dropped >= 0).all()
        assert (self.sent <= self.steps_per_bin).all(), "port sent above line rate"
        for port in range(self.num_ports):
            nonempty = self.port_nonempty(port).astype(np.int64)
            assert (nonempty <= self.sent[port]).all(), (
                "work conservation violated: port idle while queues non-empty"
            )


class Simulation:
    """Runs a traffic generator through the switch and records the trace.

    ``engine`` selects the simulation core:

    * ``"reference"`` — the object-based :class:`OutputQueuedSwitch`, one
      packet time step at a time;
    * ``"array"`` — the vectorized :class:`~repro.switchsim.engine.
      ArraySwitchEngine` (whole bins per inner call, batched arrival
      materialisation); raises :class:`~repro.switchsim.engine.
      EngineUnsupported` for scheduler configurations it cannot reproduce
      bit-exactly;
    * ``"auto"`` (default) — the array engine when it supports the
      configuration, the reference engine otherwise.

    Both engines produce bit-identical :class:`SimulationTrace`s (asserted
    by the equivalence property tests), so the choice only affects speed.

    With ``selfcheck=True`` every produced trace additionally runs the
    invariant oracles of :mod:`repro.testing.oracles` (packet
    conservation, buffer occupancy, Dynamic-Threshold bound, work
    conservation); a violation raises :class:`~repro.testing.selfcheck.
    SelfCheckError` carrying a serialized repro.  Off by default — the
    oracles are vectorised and cheap, but production sweeps should opt in
    deliberately.
    """

    def __init__(
        self,
        config: SwitchConfig,
        traffic: "TrafficGenerator",
        steps_per_bin: int = 16,
        engine: str = "auto",
        selfcheck: bool = False,
    ):
        check_positive("steps_per_bin", steps_per_bin)
        if engine not in ("auto", "array", "reference"):
            raise ValueError(
                f"engine must be 'auto', 'array', or 'reference', got {engine!r}"
            )
        self.config = config
        self.traffic = traffic
        self.steps_per_bin = int(steps_per_bin)
        self.selfcheck = bool(selfcheck)
        self.switch = OutputQueuedSwitch(config)
        from repro.switchsim.engine import ArraySwitchEngine  # deferred: cycle

        if engine == "auto":
            engine = "array" if ArraySwitchEngine.supports(config) else "reference"
        self.engine = engine
        self._array_engine = (
            ArraySwitchEngine(config) if engine == "array" else None
        )

    def _selfcheck_trace(self, trace: SimulationTrace, initial_qlen) -> None:
        from repro.testing.selfcheck import selfcheck_trace  # deferred: cycle

        selfcheck_trace(
            trace,
            repro={
                "engine": self.engine,
                "steps_per_bin": self.steps_per_bin,
                "num_bins": trace.num_bins,
                "num_ports": self.config.num_ports,
                "queues_per_port": self.config.queues_per_port,
                "buffer_capacity": self.config.buffer_capacity,
                "alphas": list(self.config.alphas),
                "traffic": repr(self.traffic),
            },
            initial_qlen=initial_qlen,
        )

    def run(self, num_bins: int) -> SimulationTrace:
        """Simulate ``num_bins`` fine-grained bins and return the trace."""
        check_positive("num_bins", num_bins)
        with obs.span("switchsim.run", engine=self.engine, num_bins=int(num_bins)):
            return self._run(num_bins)

    def _run(self, num_bins: int) -> SimulationTrace:
        if self._array_engine is not None:
            initial_qlen = (
                self._array_engine.queue_lengths() if self.selfcheck else None
            )
            trace = self._array_engine.run(self.traffic, num_bins, self.steps_per_bin)
            if self.selfcheck:
                self._selfcheck_trace(trace, initial_qlen)
            return trace
        initial_qlen = self.switch.queue_lengths() if self.selfcheck else None
        cfg = self.config
        steps = self.steps_per_bin
        qlen = np.zeros((cfg.num_queues, num_bins), dtype=np.int64)
        qlen_max = np.zeros((cfg.num_queues, num_bins), dtype=np.int64)
        received = np.zeros((cfg.num_ports, num_bins), dtype=np.int64)
        sent = np.zeros((cfg.num_ports, num_bins), dtype=np.int64)
        dropped = np.zeros((cfg.num_ports, num_bins), dtype=np.int64)
        delay_sum = np.zeros((cfg.num_ports, num_bins), dtype=np.int64)
        occupancy = np.zeros(num_bins, dtype=np.int64)

        switch = self.switch
        for b in range(num_bins):
            bin_max = np.zeros(cfg.num_queues, dtype=np.int64)
            for _ in range(steps):
                arrivals = self.traffic.arrivals(switch.step_count)
                counters = switch.step(arrivals)
                np.maximum(bin_max, switch.queue_lengths(), out=bin_max)
                received[:, b] += counters.received
                sent[:, b] += counters.sent
                dropped[:, b] += counters.dropped
                delay_sum[:, b] += counters.delay_sum
            qlen[:, b] = switch.queue_lengths()
            qlen_max[:, b] = bin_max
            occupancy[b] = switch.buffer.occupancy

        trace = SimulationTrace(
            config=cfg,
            steps_per_bin=steps,
            qlen=qlen,
            qlen_max=qlen_max,
            received=received,
            sent=sent,
            dropped=dropped,
            delay_sum=delay_sum,
            buffer_occupancy=occupancy,
        )
        trace.validate()
        if self.selfcheck:
            self._selfcheck_trace(trace, initial_qlen)
        return trace
