"""Measures the streaming imputation service against its offline twin.

The serving PR's claim: ``repro.serve`` sustains a replayed fleet —
per-interval coarse records for many switches, windowed, batch-imputed
and CEM-projected as windows fill — with bounded per-window latency and
*zero* numerical drift from the offline ``build_dataset -> impute ->
ConstraintEnforcer`` pipeline on the same windows.

Two measurements, written to ``BENCH_serve.json``:

* sustained throughput — ``switch_intervals_per_sec`` and
  ``windows_per_sec`` over the full wall-clock replay (every record of
  every switch, interval-major arrival order), plus the switches the
  fleet comprised and the windows emitted.  ``switches_per_sec`` is the
  former divided by the per-switch stream length: full-fleet replays
  the service could sustain per wall-clock second, *not* a measure of
  per-switch work;
* per-window imputation latency — p50/p99/max seconds from record
  ingestion of a window's last interval to the window's emission.

The parity assertion runs on every emitted window (bit-identical for a
float64 model, tolerance-pinned for float32), so the published numbers
are only written for a numerically faithful replay.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.bench_schema import write_bench_json
from benchmarks.conftest import save_result
from repro.testing.stream import (
    assert_stream_matches_offline,
    fleet_record_schedule,
    offline_windows,
    replay,
)


def _fleet_traces(scenario, seed: int, num_switches: int) -> dict:
    """Per-switch simulator traces under derived seeds (seed+0 trained)."""
    from repro.eval.scenarios import generate_trace

    return {
        f"sw{index:04d}": generate_trace(scenario, seed=seed + index + 1)
        for index in range(num_switches)
    }


def test_serve_throughput(bench_profile, results_dir, table1_config, trained_models):
    from repro.serve.service import StreamService

    num_switches, shards = (4, 2) if bench_profile == "paper" else (6, 2)
    scenario = table1_config.scenario
    model = trained_models["kal"]
    exact = model.dtype == np.float64

    # --- fleet + schedule (setup, not timed) --------------------------
    start = time.perf_counter()
    traces = _fleet_traces(scenario, table1_config.seed, num_switches)
    records = fleet_record_schedule(traces, scenario.interval)
    setup_seconds = time.perf_counter() - start

    # --- the replay (timed) -------------------------------------------
    service = StreamService(
        model,
        scenario.switch_config(),
        model.scaler,
        scenario.interval,
        scenario.window_intervals,
        shards=shards,
    )
    start = time.perf_counter()
    streamed, report = replay(service, records)
    replay_seconds = time.perf_counter() - start

    # --- parity: the numbers only count if the stream is faithful -----
    offline = offline_windows(
        model, traces, scenario.interval, scenario.window_intervals, model.scaler
    )
    assert set(streamed) == set(offline), "stream lost or invented windows"
    assert_stream_matches_offline(
        streamed, offline, exact=exact, rtol=1e-5, atol=1e-5
    )
    assert report.windows == len(offline)
    assert report.respawns == 0 and np.isfinite(report.latency_p99)

    write_bench_json(
        "serve",
        config=table1_config,
        timings={
            "setup_seconds": setup_seconds,
            "replay_seconds": replay_seconds,
        },
        metrics={
            "profile": bench_profile,
            "switches": num_switches,
            "shards": shards,
            "records": report.records,
            "windows": report.windows,
            "switch_intervals_per_sec": report.switch_intervals_per_sec,
            # Fleet replays per wall-clock second (throughput divided by
            # the per-switch stream length) — not per-switch work.
            "switches_per_sec": report.switch_intervals_per_sec
            / max(report.records // max(num_switches, 1), 1),
            "windows_per_sec": report.windows / replay_seconds
            if replay_seconds > 0
            else 0.0,
            "p50_latency_seconds": report.latency_p50,
            "p99_latency_seconds": report.latency_p99,
            "max_latency_seconds": report.latency_max,
            "backpressure_events": report.backpressure_events,
            "queue_high_water": report.queue_high_water,
            "parity": "bit-identical" if exact else "rtol=1e-5",
        },
    )

    lines = [
        f"profile: {bench_profile}  ({num_switches} switches x "
        f"{report.records // max(num_switches, 1)} intervals, {shards} shards)",
        f"throughput: {report.switch_intervals_per_sec:8,.0f} switch-intervals/s   "
        f"({report.windows} windows in {replay_seconds:.2f} s)",
        f"latency:    p50 {report.latency_p50 * 1e3:7.1f} ms   "
        f"p99 {report.latency_p99 * 1e3:7.1f} ms   "
        f"max {report.latency_max * 1e3:7.1f} ms",
        f"parity:     {'bit-identical' if exact else 'within 1e-5'} "
        f"to the offline pipeline on all {report.windows} windows",
    ]
    save_result(results_dir, "serve_throughput.txt", "\n".join(lines))
