"""Shared schema for the machine-readable ``BENCH_*.json`` artifacts.

Every benchmark that publishes numbers to the repo root writes them
through :func:`write_bench_json`, so all artifacts share one shape::

    {
      "schema_version": 1,
      "bench": "<name>",
      "config_digest": "<sha256 of the driving config, or null>",
      "timings": {...},    # wall-clock measurements, seconds
      "metrics": {...}     # everything else (counts, ratios, metadata)
    }

``config_digest`` is the same digest that scopes journals, trace-cache
entries, and checkpoints (:func:`repro.config.config_digest`), making a
benchmark artifact joinable with the observability artifacts of the run
that produced it.  The file is not named ``bench_*.py``-collectible: it
defines no tests, only the helper.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

BENCH_SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_bench_json(
    name: str,
    *,
    config: Any = None,
    config_digest: str | None = None,
    timings: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root in the shared schema.

    Pass either ``config`` (any config dataclass or mapping — digested
    via :func:`repro.config.config_digest`) or a precomputed
    ``config_digest``; ``timings`` holds wall-clock seconds, ``metrics``
    everything else.  Returns the written path.
    """
    if config is not None and config_digest is None:
        from repro.config import config_digest as digest_fn

        config_digest = digest_fn(config)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "config_digest": config_digest,
        "timings": dict(timings or {}),
        "metrics": dict(metrics or {}),
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def read_bench_json(name: str) -> dict:
    """Load ``BENCH_<name>.json``, checking the schema version."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    doc = json.loads(path.read_text())
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path.name}: schema_version {version!r} "
            f"(this tree reads {BENCH_SCHEMA_VERSION})"
        )
    return doc
