"""Regenerates Table 1 (the paper's main quantitative result).

Expected shape (not absolute numbers): consistency errors (rows a-c) fall
from Transformer to +KAL and reach exactly 0 with +CEM; downstream errors
(rows d-i) order IterImputer >= Transformer >= +KAL >= +KAL+CEM on most
rows, with the paper's caveats (KAL-only can overshoot row a; CEM can be
a wash on row f).
"""

from benchmarks.bench_schema import write_bench_json
from benchmarks.conftest import save_result
from repro.eval.table1 import run_table1


def test_table1(benchmark, datasets, trained_models, table1_config, results_dir):
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(
            config=table1_config,
            datasets=datasets,
            pretrained=(trained_models["plain"], trained_models["kal"]),
        ),
        rounds=1,
        iterations=1,
    )

    improvements = result.improvement_over_transformer()
    lines = [
        result.render(),
        "",
        f"test windows: {result.num_test_windows}",
        f"CEM seconds/window (incl. model forward): {result.cem_seconds_per_window:.3f}",
        f"training seconds: plain={trained_models['plain_seconds']:.0f} "
        f"kal={trained_models['kal_seconds']:.0f}",
        "",
        "improvement of Transformer+KAL+CEM over Transformer (paper: 11-96%):",
    ]
    lines += [f"  {k}: {v:+.1f}%" for k, v in improvements.items()]
    save_result(results_dir, "table1.txt", "\n".join(lines))
    write_bench_json(
        "table1",
        config=table1_config,
        timings={
            "cem_seconds_per_window": result.cem_seconds_per_window,
            "train_plain_seconds": trained_models["plain_seconds"],
            "train_kal_seconds": trained_models["kal_seconds"],
        },
        metrics={
            "num_test_windows": result.num_test_windows,
            "improvement_over_transformer": improvements,
            "values": result.values,
        },
    )

    # Shape assertions, mirroring the paper's headline claims.
    for key in ("max", "periodic", "sent"):
        assert result.values[key]["Transformer+KAL+CEM"] == 0.0
    # The full method beats the plain transformer on a majority of the
    # downstream tasks.
    wins = sum(1 for v in improvements.values() if v > 0)
    assert wins >= 3, improvements
