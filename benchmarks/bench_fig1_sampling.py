"""Regenerates Fig. 1: sampling hides insights; coarse series correlate.

Benchmarks the monitoring stack itself (sample_trace over the full trace)
and writes the Fig.-1 data summary: the burst magnitude hidden from the
periodic sampler and the cross-series correlations that make imputation
feasible.
"""

from benchmarks.conftest import save_result
from repro.eval.figures import fig1_data
from repro.eval.report import render_series
from repro.eval.scenarios import generate_trace
from repro.telemetry import sample_trace


def test_fig1_sampling(benchmark, table1_config, results_dir):
    scenario = table1_config.scenario
    trace = generate_trace(scenario, seed=7)

    telemetry = benchmark(sample_trace, trace, scenario.interval)
    assert telemetry.num_intervals == trace.num_bins // scenario.interval

    queue = int(trace.qlen.max(axis=1).argmax())
    data = fig1_data(trace, queue=queue, interval=scenario.interval)
    hidden = data.max_per_interval - data.periodic_samples
    peak_bin = int(data.fine_qlen.argmax())
    start = max(0, peak_bin - 250)
    excerpt = data.fine_qlen[start : start + 500]

    drops = data.dropped_per_interval
    with_drops = data.max_per_interval[drops > 0]
    without = data.max_per_interval[drops == 0]
    lines = [
        f"queue {queue}: fine-grained view around the peak (1 ms bins):",
        render_series(excerpt, height=8, width=100),
        "",
        f"largest burst hidden from the periodic sampler: {hidden.max():.0f} packets",
        f"mean sampled qlen: {data.periodic_samples.mean():.2f}  "
        f"mean LANZ max: {data.max_per_interval.mean():.2f}",
        f"corr(per-interval max qlen, port sent): {data.correlation_sent_vs_qlen():.2f}",
    ]
    if len(with_drops) and len(without):
        lines.append(
            f"mean LANZ max in drop intervals vs quiet: "
            f"{with_drops.mean():.1f} vs {without.mean():.1f}"
        )
    save_result(results_dir, "fig1_sampling.txt", "\n".join(lines))

    # Fig. 1's claims: sampling hides bursts, and the series correlate.
    assert hidden.max() > 0
    assert data.correlation_sent_vs_qlen() > 0.2
    if len(with_drops) and len(without):
        assert with_drops.mean() > without.mean()
