"""Measures training and CEM against their pre-optimization reference paths.

The tentpole claim of the trainer-speed PR: float32 fused-kernel training
plus the vectorized constraint projection make the learning side of the
pipeline as cheap as the simulator side, without changing any float64
number — the reference path (float64, composite kernels, per-interval
CEM loop) is still there behind config knobs and is what we race against.

Three measurements, written to ``BENCH_train.json``:

* ``epochs/sec`` — one KAL training epoch on the profile's dataset,
  reference (``dtype=float64, fused_kernels=False``) vs optimized
  (``dtype=float32, fused_kernels=True``);
* ``CEM projections/sec`` — per-window constraint projection over noisy
  imputations, per-interval loop vs vectorized passes (outputs asserted
  bit-identical);
* ``end-to-end Table-1 wall-clock`` — :func:`repro.eval.table1.run_table1`
  under the reference knobs vs the optimized defaults, same dataset, with
  the paper profile required to reach >= 5x.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from benchmarks.bench_schema import write_bench_json
from benchmarks.conftest import save_result
from repro.eval.table1 import run_table1, train_transformer
from repro.imputation.cem import ConstraintEnforcer

REFERENCE = dict(
    dtype="float64", fused_kernels=False, cem_vectorized=False, batch_inference=False
)
OPTIMIZED = dict(
    dtype="float32", fused_kernels=True, cem_vectorized=True, batch_inference=True
)


def _epoch_seconds(datasets, config, variant: dict) -> float:
    """Wall-clock of one full KAL training run under ``variant`` knobs."""
    train, val, _ = datasets
    cfg = dataclasses.replace(config, **variant)
    start = time.perf_counter()
    train_transformer(train, val, cfg, use_kal=True)
    return (time.perf_counter() - start) / cfg.epochs


def _cem_seconds(test, vectorized: bool, noisy) -> tuple[float, list]:
    enforcer = ConstraintEnforcer(test.switch_config, vectorized=vectorized)
    start = time.perf_counter()
    outputs = [
        enforcer.enforce(imputed, sample)
        for imputed, sample in zip(noisy, test.samples)
    ]
    return time.perf_counter() - start, outputs


def test_train_speed(bench_profile, results_dir, datasets, table1_config):
    if bench_profile == "paper":
        train_epochs, e2e_epochs, required_speedup = 2, 3, 5.0
    else:
        # CI smoke: tiny config, shared runners are noisy — only require
        # the optimized path to not be a regression.
        train_epochs, e2e_epochs, required_speedup = 2, 2, 1.0
    timing_config = dataclasses.replace(table1_config, epochs=train_epochs)
    train, val, test = datasets

    # --- training epochs/sec -----------------------------------------
    ref_epoch = _epoch_seconds(datasets, timing_config, REFERENCE)
    opt_epoch = _epoch_seconds(datasets, timing_config, OPTIMIZED)
    train_speedup = ref_epoch / opt_epoch

    # --- CEM projections/sec -----------------------------------------
    # Repeat the window set so the vectorized timing is not all startup.
    rng = np.random.default_rng(table1_config.seed)
    repeats = max(1, 200 // max(len(test.samples), 1))
    cem_test = dataclasses.replace(test, samples=list(test.samples) * repeats)
    noisy = [
        np.clip(s.target_raw + rng.normal(0.0, 3.0, s.target_raw.shape), 0.0, None)
        for s in cem_test.samples
    ]
    ref_cem_seconds, ref_outputs = _cem_seconds(cem_test, False, noisy)
    opt_cem_seconds, opt_outputs = _cem_seconds(cem_test, True, noisy)
    for expected, actual in zip(ref_outputs, opt_outputs):
        assert (expected == actual).all(), "vectorized CEM diverged from reference"
    cem_windows = len(cem_test.samples)
    cem_speedup = ref_cem_seconds / opt_cem_seconds

    # --- end-to-end Table 1 ------------------------------------------
    e2e = {}
    for label, variant in (("reference", REFERENCE), ("optimized", OPTIMIZED)):
        cfg = dataclasses.replace(table1_config, epochs=e2e_epochs, **variant)
        start = time.perf_counter()
        result = run_table1(cfg, datasets=datasets)
        e2e[label] = time.perf_counter() - start
        assert set(result.values) and all(
            np.isfinite(list(column.values())).all()
            for column in result.values.values()
        )
    e2e_speedup = e2e["reference"] / e2e["optimized"]

    write_bench_json(
        "train",
        config=table1_config,
        timings={
            "reference_epoch_seconds": ref_epoch,
            "optimized_epoch_seconds": opt_epoch,
            "reference_cem_seconds": ref_cem_seconds,
            "optimized_cem_seconds": opt_cem_seconds,
            "reference_table1_seconds": e2e["reference"],
            "optimized_table1_seconds": e2e["optimized"],
        },
        metrics={
            "profile": bench_profile,
            "train_windows": len(train),
            "cem_windows": cem_windows,
            "reference_epochs_per_sec": 1.0 / ref_epoch,
            "optimized_epochs_per_sec": 1.0 / opt_epoch,
            "train_speedup": train_speedup,
            "reference_cem_projections_per_sec": cem_windows / ref_cem_seconds,
            "optimized_cem_projections_per_sec": cem_windows / opt_cem_seconds,
            "cem_speedup": cem_speedup,
            "table1_epochs": e2e_epochs,
            "table1_speedup": e2e_speedup,
        },
    )

    lines = [
        f"profile: {bench_profile}  ({len(train)} train windows, "
        f"{cem_windows} CEM windows)",
        f"training (KAL):  reference {ref_epoch:6.2f} s/epoch   "
        f"optimized {opt_epoch:6.2f} s/epoch   ({train_speedup:.1f}x)",
        f"CEM projection:  reference {cem_windows / ref_cem_seconds:8,.0f} win/s   "
        f"optimized {cem_windows / opt_cem_seconds:8,.0f} win/s   "
        f"({cem_speedup:.1f}x, outputs bit-identical)",
        f"table1 ({e2e_epochs} epochs): reference {e2e['reference']:6.1f} s        "
        f"optimized {e2e['optimized']:6.1f} s        ({e2e_speedup:.1f}x)",
    ]
    save_result(results_dir, "train_speed.txt", "\n".join(lines))

    assert e2e_speedup >= required_speedup, (
        f"table1 only {e2e_speedup:.1f}x faster (need >= {required_speedup}x)"
    )
