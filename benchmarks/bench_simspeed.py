"""Measures the array engine against the reference simulator.

The tentpole claim: the vectorized :class:`ArraySwitchEngine` simulates
the paper scenario at least 10x faster than the reference object-based
loop while producing a bit-identical trace, and the on-disk trace cache
turns a repeated run into a single ``.npz`` load.

Writes ``BENCH_simspeed.json`` at the repo root (steps/sec per engine,
speedup, cache timings) in the shared :mod:`benchmarks.bench_schema`
shape, alongside the human-readable ``benchmarks/results/simspeed.txt``.
"""

from __future__ import annotations

import time

from benchmarks.bench_schema import write_bench_json
from benchmarks.conftest import save_result
from repro.eval.scenarios import (
    build_traffic,
    generate_trace,
    paper_scenario,
    quick_scenario,
)
from repro.switchsim import Simulation, TraceCache

TRACE_FIELDS = (
    "qlen",
    "qlen_max",
    "received",
    "sent",
    "dropped",
    "delay_sum",
    "buffer_occupancy",
)


def _time_engine(scenario, num_bins, engine, repeats=1):
    """Best-of-``repeats`` wall time for one full simulation; returns
    (seconds, trace)."""
    best, trace = float("inf"), None
    for _ in range(repeats):
        sim = Simulation(
            scenario.switch_config(),
            build_traffic(scenario, seed=0),
            steps_per_bin=scenario.steps_per_bin,
            engine=engine,
        )
        start = time.perf_counter()
        trace = sim.run(num_bins)
        best = min(best, time.perf_counter() - start)
    return best, trace


def test_simspeed(bench_profile, results_dir, tmp_path):
    if bench_profile == "paper":
        scenario, num_bins, repeats, required_speedup = paper_scenario(), 2000, 3, 10.0
    else:
        # CI smoke: smaller run, looser floor (shared runners are noisy).
        scenario, num_bins, repeats, required_speedup = quick_scenario(), 600, 3, 2.0
    num_steps = num_bins * scenario.steps_per_bin

    ref_seconds, ref_trace = _time_engine(scenario, num_bins, "reference")
    arr_seconds, arr_trace = _time_engine(scenario, num_bins, "array", repeats)
    for field in TRACE_FIELDS:
        assert (getattr(ref_trace, field) == getattr(arr_trace, field)).all(), field
    speedup = ref_seconds / arr_seconds

    # Cache: cold miss (simulate + store) vs warm hit (load only).
    cache = TraceCache(tmp_path / "traces")
    cache_scenario = scenario.__class__(
        **{**scenario.__dict__, "duration_bins": num_bins}
    )
    start = time.perf_counter()
    generate_trace(cache_scenario, seed=0, cache=cache)
    miss_seconds = time.perf_counter() - start
    start = time.perf_counter()
    generate_trace(cache_scenario, seed=0, cache=cache)
    hit_seconds = time.perf_counter() - start
    assert cache.hits == 1 and cache.misses == 1

    write_bench_json(
        "simspeed",
        config=cache_scenario,
        timings={
            "reference_seconds": ref_seconds,
            "array_seconds": arr_seconds,
            "cache_miss_seconds": miss_seconds,
            "cache_hit_seconds": hit_seconds,
        },
        metrics={
            "profile": bench_profile,
            "num_bins": num_bins,
            "steps_per_bin": scenario.steps_per_bin,
            "num_steps": num_steps,
            "reference_steps_per_sec": num_steps / ref_seconds,
            "array_steps_per_sec": num_steps / arr_seconds,
            "speedup": speedup,
            "cache_hit_speedup": miss_seconds / hit_seconds,
        },
    )

    lines = [
        f"profile: {bench_profile}  ({num_bins} bins x {scenario.steps_per_bin} steps)",
        f"reference engine: {num_steps / ref_seconds:>12,.0f} steps/s  ({ref_seconds:.2f} s)",
        f"array engine:     {num_steps / arr_seconds:>12,.0f} steps/s  ({arr_seconds:.2f} s)",
        f"speedup:          {speedup:.1f}x  (traces bit-identical)",
        f"cache miss: {miss_seconds * 1e3:.1f} ms   hit: {hit_seconds * 1e3:.1f} ms   "
        f"({miss_seconds / hit_seconds:.0f}x)",
    ]
    save_result(results_dir, "simspeed.txt", "\n".join(lines))

    assert speedup >= required_speedup, (
        f"array engine only {speedup:.1f}x faster (need >= {required_speedup}x)"
    )
    assert hit_seconds < miss_seconds
