"""Measures the fabric and flow-level traffic against the single switch.

The scenario-core claim: the leaf-spine :class:`Fabric` costs roughly
one reference-engine switch per member switch (no super-linear
orchestration overhead — switch-steps/sec stays within a small factor
of the standalone reference simulator), and the flow-level generator's
``arrivals_batch`` path keeps the array engine's trace generation within
the same order of magnitude as the closed-form Poisson generator.

Writes ``BENCH_topology.json`` at the repo root (switch-steps/sec for
the single switch and the fabric, steps/sec for flow-mode trace
generation) in the shared :mod:`benchmarks.bench_schema` shape,
alongside the human-readable ``benchmarks/results/topology.txt``.
"""

from __future__ import annotations

import dataclasses
import time

from benchmarks.bench_schema import write_bench_json
from benchmarks.conftest import save_result
from repro.eval.fabric_scenarios import LeafSpineConfig, build_leaf_traffic
from repro.eval.scenarios import build_traffic, quick_scenario
from repro.switchsim import Fabric, Simulation
from repro.traffic import FlowTrafficConfig, FlowTrafficGenerator


def _time_single_switch(scenario, num_bins):
    sim = Simulation(
        scenario.switch_config(),
        build_traffic(scenario, seed=0),
        steps_per_bin=scenario.steps_per_bin,
        engine="reference",
    )
    start = time.perf_counter()
    sim.run(num_bins)
    return time.perf_counter() - start


def _time_fabric(config):
    fabric = Fabric(
        config.topology,
        build_leaf_traffic(config, seed=0),
        steps_per_bin=config.steps_per_bin,
    )
    start = time.perf_counter()
    trace = fabric.run(config.duration_bins)
    return time.perf_counter() - start, trace


def _time_flow_engine(num_bins, engine):
    scenario = quick_scenario()
    sim = Simulation(
        scenario.switch_config(),
        FlowTrafficGenerator(
            FlowTrafficConfig(flows_per_step=0.01), seed=0
        ),
        steps_per_bin=scenario.steps_per_bin,
        engine=engine,
    )
    start = time.perf_counter()
    sim.run(num_bins)
    return time.perf_counter() - start


def test_topology(bench_profile, results_dir):
    if bench_profile == "paper":
        num_bins, fabric_bins, flow_bins, max_overhead = 2000, 2000, 2000, 3.0
    else:
        # CI smoke: smaller run, looser ceiling (shared runners are noisy).
        num_bins, fabric_bins, flow_bins, max_overhead = 400, 400, 400, 6.0

    scenario = dataclasses.replace(quick_scenario(), duration_bins=num_bins)
    config = dataclasses.replace(LeafSpineConfig(), duration_bins=fabric_bins)
    num_switches = config.topology.num_switches

    single_seconds = _time_single_switch(scenario, num_bins)
    fabric_seconds, fabric_trace = _time_fabric(config)
    flow_ref_seconds = _time_flow_engine(flow_bins, "reference")
    flow_arr_seconds = _time_flow_engine(flow_bins, "array")

    single_steps = num_bins * scenario.steps_per_bin
    fabric_switch_steps = (
        num_switches * fabric_bins * config.steps_per_bin
    )
    flow_steps = flow_bins * quick_scenario().steps_per_bin

    single_rate = single_steps / single_seconds
    fabric_rate = fabric_switch_steps / fabric_seconds
    # Per-switch-step cost of the fabric relative to the standalone
    # reference loop; 1.0 means zero orchestration overhead.
    overhead = single_rate / fabric_rate

    assert set(fabric_trace.switches) == {"leaf0", "leaf1", "spine0"}

    write_bench_json(
        "topology",
        config=config,
        timings={
            "single_switch_seconds": single_seconds,
            "fabric_seconds": fabric_seconds,
            "flow_reference_seconds": flow_ref_seconds,
            "flow_array_seconds": flow_arr_seconds,
        },
        metrics={
            "profile": bench_profile,
            "num_switches": num_switches,
            "single_switch_steps_per_sec": single_rate,
            "fabric_switch_steps_per_sec": fabric_rate,
            "fabric_overhead_vs_reference": overhead,
            "flow_reference_steps_per_sec": flow_steps / flow_ref_seconds,
            "flow_array_steps_per_sec": flow_steps / flow_arr_seconds,
        },
    )

    lines = [
        f"profile: {bench_profile}",
        f"single switch (reference): {single_rate:>12,.0f} switch-steps/s"
        f"  ({single_seconds:.2f} s)",
        f"fabric ({num_switches} switches):     {fabric_rate:>12,.0f} switch-steps/s"
        f"  ({fabric_seconds:.2f} s)",
        f"fabric overhead:           {overhead:.2f}x per switch-step",
        f"flow mode, reference:      {flow_steps / flow_ref_seconds:>12,.0f} steps/s",
        f"flow mode, array:          {flow_steps / flow_arr_seconds:>12,.0f} steps/s",
    ]
    save_result(results_dir, "topology.txt", "\n".join(lines))

    assert overhead <= max_overhead, (
        f"fabric costs {overhead:.1f}x per switch-step "
        f"(ceiling {max_overhead}x)"
    )
