"""Shared benchmark fixtures: one simulation and one training run per session.

The profile is selected with ``REPRO_BENCH_PROFILE``:

* ``paper`` (default) — the paper-like scenario (4 ports, 6 s of traffic,
  30-epoch training); the full benchmark run takes several minutes.
* ``quick`` — a scaled-down scenario for smoke runs (~1 minute total).

Each benchmark writes the table/figure it regenerates to
``benchmarks/results/*.txt`` so EXPERIMENTS.md can reference concrete
output.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval import generate_dataset, paper_scenario, quick_scenario
from repro.eval.table1 import Table1Config, train_transformer

RESULTS_DIR = Path(__file__).parent / "results"


def _profile() -> str:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "paper")
    if profile not in ("paper", "quick"):
        raise ValueError(f"REPRO_BENCH_PROFILE must be 'paper' or 'quick', got {profile!r}")
    return profile


@pytest.fixture(scope="session")
def bench_profile() -> str:
    return _profile()


@pytest.fixture(scope="session")
def table1_config(bench_profile) -> Table1Config:
    if bench_profile == "paper":
        return Table1Config(scenario=paper_scenario(), epochs=30)
    return Table1Config(
        scenario=quick_scenario(),
        epochs=6,
        d_model=32,
        num_layers=1,
        d_ff=64,
        batch_size=4,
    )


@pytest.fixture(scope="session")
def datasets(table1_config):
    """(train, val, test) for the selected profile — one simulation/session."""
    return generate_dataset(table1_config.scenario, seed=table1_config.seed)


@pytest.fixture(scope="session")
def trained_models(datasets, table1_config):
    """(plain_emd_model, kal_model), trained once per session."""
    train, val, _ = datasets
    plain, plain_seconds = train_transformer(train, val, table1_config, use_kal=False)
    kal, kal_seconds = train_transformer(train, val, table1_config, use_kal=True)
    return {
        "plain": plain,
        "kal": kal,
        "plain_seconds": plain_seconds,
        "kal_seconds": kal_seconds,
    }


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    """Write a regenerated table/figure and echo it to stdout."""
    path = results_dir / name
    path.write_text(text)
    print(f"\n--- {name} ---")
    print(text)
