"""Regenerates the headline claim: usable imputation at 50× upscaling.

The paper's banner result (§1): combining ML with FM "effectively
increases queue-length monitoring granularity by 50× (from 50 ms to
1 ms)".  This bench trains the full method at several upscaling factors
over the same 1 ms ground truth.  Shape: imputation error grows with the
factor (coarser monitoring gives the model less to work with), but the
corrected output stays constraint-consistent at every factor including
the paper's 50×.
"""

from benchmarks.conftest import save_result
from repro.eval.report import format_table
from repro.eval.table1 import Table1Config
from repro.eval.upscaling import run_upscaling


def test_upscaling_factors(benchmark, bench_profile, table1_config, results_dir):
    factors = [10, 25, 50] if bench_profile == "paper" else [10, 25]
    # Shorter training per factor keeps the sweep affordable; the point is
    # the trend, not peak accuracy.
    sweep_config = Table1Config(
        scenario=table1_config.scenario,
        epochs=max(table1_config.epochs // 2, 2),
        d_model=table1_config.d_model,
        num_layers=table1_config.num_layers,
        d_ff=table1_config.d_ff,
        batch_size=table1_config.batch_size,
        seed=table1_config.seed,
    )

    points = benchmark.pedantic(
        run_upscaling,
        args=(factors, table1_config.scenario),
        kwargs=dict(config=sweep_config),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"{p.factor}x",
            f"{p.mae:.3f}",
            f"{p.burst_detection:.3f}",
            f"{p.burst_height:.3f}",
            f"{p.consistency_satisfied * 100:.0f}%",
        ]
        for p in points
    ]
    save_result(
        results_dir,
        "upscaling.txt",
        format_table(
            ["factor", "MAE (pkts)", "burst detect err", "burst height err", "consistent"],
            rows,
        ),
    )

    # The full method stays constraint-consistent at every factor.
    assert all(p.consistency_satisfied == 1.0 for p in points)