"""Extension benchmark: latency-oriented downstream tasks.

Not a paper artefact — the paper's intro motivates queue monitoring with
latency guarantees (SNC-Meister [63]), and this bench extends Table 1's
methodology to latency tasks: p99 queueing-delay estimation and per-bin
SLO-violation detection on the imputed series.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.downstream.latency import evaluate_latency
from repro.eval.report import format_table
from repro.imputation import ConstraintEnforcer, IterativeImputer


def test_latency_tasks(benchmark, datasets, trained_models, results_dir):
    _, _, test = datasets
    enforcer = ConstraintEnforcer(test.switch_config)
    kal = trained_models["kal"]
    plain = trained_models["plain"]
    iterative = IterativeImputer()
    drain_rate = float(test.steps_per_bin)

    def full_method(sample):
        return enforcer.enforce(kal.impute(sample), sample)

    methods = {
        "IterImputer": iterative.impute,
        "Transformer": plain.impute,
        "Transformer+KAL": kal.impute,
        "Transformer+KAL+CEM": full_method,
    }

    def evaluate_all():
        table = {}
        for name, impute in methods.items():
            reports = [
                evaluate_latency(impute(s), s.target_raw, drain_rate, slo_bins=2.0)
                for s in test.samples
            ]
            table[name] = dict(
                tail=float(np.mean([r.tail_latency_error for r in reports])),
                slo=float(np.mean([r.slo_detection_error for r in reports])),
            )
        return table

    table = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    rows = [
        [metric] + [f"{table[name][key]:.3f}" for name in methods]
        for metric, key in (("p99 delay error", "tail"), ("SLO detection (1-F1)", "slo"))
    ]
    save_result(
        results_dir,
        "latency_tasks.txt",
        format_table(["task"] + list(methods), rows),
    )

    # The constraint-enforced method should not be worse than the plain
    # transformer on tail-latency estimation (the max constraint pins the
    # extremes the p99 depends on).
    assert (
        table["Transformer+KAL+CEM"]["tail"] <= table["Transformer"]["tail"] + 0.05
    )
