"""Ablation: fast combinatorial CEM vs the solver-based (MILP) CEM.

DESIGN.md claims the greedy projection computes the same L1-minimal
correction the paper's Z3 query finds.  This benchmark verifies the claim
(equal objective values on real model outputs, at tiny-window scale where
the MILP is tractable) and quantifies the speed gap.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.eval.report import format_table
from repro.fm import MilpCem
from repro.imputation import ConstraintEnforcer
from repro.switchsim import Simulation, SwitchConfig
from repro.telemetry import build_dataset
from repro.traffic import PoissonFlowTraffic
from repro.traffic.distributions import FixedSizes


@pytest.fixture(scope="module")
def tiny_windows():
    cfg = SwitchConfig(num_ports=1, queues_per_port=2, buffer_capacity=30, alphas=(1.0, 0.5))
    traffic = PoissonFlowTraffic(
        num_sources=3, num_ports=1, flows_per_step=0.15, sizes=FixedSizes(4), seed=3
    )
    trace = Simulation(cfg, traffic, steps_per_bin=4).run(60)
    dataset = build_dataset(trace, interval=5, window_intervals=2, stride_intervals=2)
    rng = np.random.default_rng(0)
    noisy = [
        np.clip(s.target_raw + rng.normal(0, 2, s.target_raw.shape), 0, None)
        for s in dataset.samples
    ]
    return cfg, dataset, noisy


def test_greedy_vs_milp(benchmark, tiny_windows, results_dir):
    cfg, dataset, noisy = tiny_windows
    enforcer = ConstraintEnforcer(cfg)
    milp = MilpCem(cfg, lp_backend="scipy")

    benchmark(enforcer.enforce, noisy[0], dataset[0])

    rows = []
    greedy_total = milp_total = 0.0
    for i, (sample, window) in enumerate(zip(dataset.samples, noisy)):
        start = time.perf_counter()
        greedy = enforcer.enforce(window, sample)
        greedy_seconds = time.perf_counter() - start
        greedy_cost = enforcer.correction_cost(window, greedy, sample)

        reference = milp.enforce(window, sample)
        assert reference.status == "sat"
        rows.append(
            [
                str(i),
                f"{greedy_cost:.3f}",
                f"{reference.objective:.3f}",
                f"{greedy_seconds * 1e3:.2f}",
                f"{reference.solve_time * 1e3:.0f}",
            ]
        )
        greedy_total += greedy_seconds
        milp_total += reference.solve_time
        assert greedy_cost == pytest.approx(reference.objective, abs=1e-6)

    table = format_table(
        ["window", "greedy L1 cost", "MILP L1 cost", "greedy ms", "MILP ms"], rows
    )
    speedup = milp_total / max(greedy_total, 1e-9)
    save_result(
        results_dir,
        "ablation_cem.txt",
        table + f"\n\ngreedy == MILP optimum on all windows; speedup ~{speedup:.0f}x",
    )
