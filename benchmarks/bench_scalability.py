"""Regenerates the scalability results of §2.3 and §4.

* FM alone: solve time / branch-and-bound nodes versus horizon — the
  paper's "Z3 solved simple scenarios in minutes but could not handle
  realistic scenarios in 24 hours".
* CEM: per-window correction time — the paper's "average 1.47 s to correct
  a 50 ms window", with both the solver-based formulation (the paper's)
  and this repo's fast combinatorial projection.
"""

import pytest

from benchmarks.bench_schema import write_bench_json
from benchmarks.conftest import save_result
from repro.eval.report import format_table
from repro.eval.scalability import cem_timing, fm_scaling
from repro.fm.model import FMImputer, scenario_from_trace
from repro.eval.scalability import _fm_trace


HORIZONS = [8, 16, 32, 48]
STEPS_PER_INTERVAL = 8


@pytest.fixture(scope="module")
def fm_points(bench_profile):
    horizons = HORIZONS if bench_profile == "paper" else HORIZONS[:3]
    return fm_scaling(
        horizons, steps_per_interval=STEPS_PER_INTERVAL, node_limit=2_000, seed=0
    )


def test_fm_scaling_curve(benchmark, fm_points, results_dir):
    # The heavy work (the scaling sweep) happens once in the module fixture;
    # the measured operation here is re-solving the smallest horizon, which
    # anchors the curve's left end.
    trace = _fm_trace(HORIZONS[0], seed=0)
    scenario = scenario_from_trace(
        trace,
        steps_per_interval=STEPS_PER_INTERVAL,
        num_intervals=HORIZONS[0] // STEPS_PER_INTERVAL,
        fan_in=3,
    )
    benchmark.pedantic(
        FMImputer(lp_backend="scipy", node_limit=2_000).impute,
        args=(scenario,),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            str(p.horizon),
            p.status,
            f"{p.solve_seconds:.2f}",
            str(p.nodes_explored),
            "yes" if p.hit_node_limit else "no",
        ]
        for p in fm_points
    ]
    table = format_table(
        ["horizon (steps)", "status", "seconds", "B&B nodes", "node-limit hit"], rows
    )
    save_result(results_dir, "scalability_fm.txt", table)
    write_bench_json(
        "scalability_fm",
        config={
            "horizons": [p.horizon for p in fm_points],
            "steps_per_interval": STEPS_PER_INTERVAL,
            "node_limit": 2_000,
        },
        timings={
            f"horizon_{p.horizon}_seconds": p.solve_seconds for p in fm_points
        },
        metrics={
            "points": [
                {
                    "horizon": p.horizon,
                    "status": p.status,
                    "nodes_explored": p.nodes_explored,
                    "hit_node_limit": p.hit_node_limit,
                    "timed_out": p.timed_out,
                }
                for p in fm_points
            ]
        },
    )

    # Shape: search effort grows super-linearly with the horizon (or the
    # solver gives up entirely — the paper's ">24 h" regime).
    nodes = [p.nodes_explored for p in fm_points]
    assert nodes[-1] >= nodes[0]
    last = fm_points[-1]
    times = [p.solve_seconds for p in fm_points]
    horizon_ratio = last.horizon / fm_points[0].horizon
    assert last.hit_node_limit or (
        times[0] > 0 and times[-1] / times[0] > horizon_ratio
    )


def test_cem_timing(benchmark, datasets, trained_models, results_dir):
    _, _, test = datasets
    kal = trained_models["kal"]
    imputed = [kal.impute(s) for s in test.samples]

    from repro.imputation import ConstraintEnforcer

    enforcer = ConstraintEnforcer(test.switch_config)
    sample = test[0]
    benchmark(enforcer.enforce, imputed[0], sample)

    timing = cem_timing(test, imputed, max_milp_windows=2, milp_intervals=1)
    lines = [
        f"fast combinatorial CEM: {timing.greedy_seconds * 1e3:.2f} ms per "
        f"300 ms window",
        f"solver-based CEM (paper's Z3-style formulation): "
        f"{timing.milp_seconds:.2f} s per 50 ms interval "
        f"(on {min(2, timing.num_windows)} windows)",
        f"windows: {timing.num_windows}",
        "",
        "paper reference: 1.47 s for the Z3 CEM to correct a 50 ms output;",
        "FM alone did not terminate on realistic horizons (scalability_fm.txt).",
    ]
    save_result(results_dir, "scalability_cem.txt", "\n".join(lines))

    # CEM stays far below the FM-alone wall; the solver-based CEM lands in
    # the ~seconds range the paper reports.
    assert timing.greedy_seconds < 0.5
    assert timing.milp_solved >= 1
