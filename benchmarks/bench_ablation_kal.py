"""Ablation: which KAL ingredients matter (DESIGN.md design-choice bench).

Trains the transformer with each subset of the knowledge terms — none
(plain EMD), equalities only (Φ: C1+C2), inequality only (Ψ: C3), and the
full KAL — and reports the three consistency errors.  Shape expectation:
the equality terms drive rows a/b down, the inequality term drives row c
down, and full KAL gets both.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.constraints import check_constraints
from repro.eval.report import format_table
from repro.imputation.trainer import Trainer, TrainerConfig
from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer


def _train_variant(datasets, table1_config, *, use_kal, use_phi=True, use_psi=True):
    train, val, _ = datasets
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=table1_config.d_model,
            num_heads=table1_config.num_heads,
            num_layers=table1_config.num_layers,
            d_ff=table1_config.d_ff,
        ),
        train.scaler,
        seed=table1_config.seed,
    )
    trainer = Trainer(
        model,
        train,
        TrainerConfig(
            epochs=table1_config.epochs,
            batch_size=table1_config.batch_size,
            learning_rate=table1_config.learning_rate,
            use_kal=use_kal,
            mu=table1_config.mu,
            use_phi=use_phi,
            use_psi=use_psi,
            seed=table1_config.seed,
        ),
        val=val,
    )
    trainer.train()
    return model


def test_kal_components(benchmark, datasets, table1_config, results_dir):
    _, _, test = datasets

    def run_all():
        return {
            "EMD only": _train_variant(datasets, table1_config, use_kal=False),
            "EMD+Phi (C1+C2)": _train_variant(
                datasets, table1_config, use_kal=True, use_psi=False
            ),
            "EMD+Psi (C3)": _train_variant(
                datasets, table1_config, use_kal=True, use_phi=False
            ),
            "EMD+KAL (full)": _train_variant(datasets, table1_config, use_kal=True),
        }

    models = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    errors = {}
    for name, model in models.items():
        reports = [
            check_constraints(model.impute(s), s, test.switch_config)
            for s in test.samples
        ]
        a = float(np.mean([r.max_error for r in reports]))
        b = float(np.mean([r.periodic_error for r in reports]))
        c = float(np.mean([r.sent_error for r in reports]))
        errors[name] = (a, b, c)
        rows.append([name, f"{a:.3f}", f"{b:.3f}", f"{c:.4f}"])

    table = format_table(["variant", "a. max", "b. periodic", "c. sent"], rows)
    save_result(results_dir, "ablation_kal.txt", table)

    # Full KAL beats plain EMD on the consistency total.
    total = {name: sum(v) for name, v in errors.items()}
    assert total["EMD+KAL (full)"] < total["EMD only"]
