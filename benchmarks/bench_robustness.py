"""Extension benchmark: robustness to degraded telemetry.

Not a paper artefact — §2.1's footnote notes that LANZ only reports queues
above a threshold, and real SNMP polls get lost.  This bench feeds the
trained KAL model telemetry degraded in both ways and measures how the
full method (with CEM) degrades: imputation error should rise gracefully
and constraint satisfaction (w.r.t. the degraded measurements the CEM is
given) must remain exact.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import save_result
from repro.constraints import check_constraints
from repro.eval.report import format_table
from repro.imputation import ConstraintEnforcer
from repro.telemetry.dataset import build_features
from repro.telemetry.sampling import CoarseTelemetry


def _degrade_sample(sample, scaler, lanz_threshold=0, rng=None, snmp_loss=0.0):
    """Apply LANZ thresholding / SNMP loss to one window's measurements."""
    m_max = sample.m_max.copy()
    if lanz_threshold > 0:
        suppressed = m_max <= lanz_threshold
        m_max[suppressed] = sample.m_sample[suppressed]
    m_sent = sample.m_sent.copy()
    m_received = sample.m_received.copy()
    m_dropped = sample.m_dropped.copy()
    if snmp_loss > 0 and rng is not None:
        lost = rng.random(m_sent.shape) < snmp_loss
        # Operator fallback: carry the previous interval's value forward.
        for port in range(m_sent.shape[0]):
            for i in range(m_sent.shape[1]):
                if lost[port, i] and i > 0:
                    m_sent[port, i] = m_sent[port, i - 1]
                    m_received[port, i] = m_received[port, i - 1]
                    m_dropped[port, i] = m_dropped[port, i - 1]
    telemetry = CoarseTelemetry(
        interval=sample.interval,
        qlen_sample=sample.m_sample,
        qlen_max=m_max,
        received=m_received,
        sent=m_sent,
        dropped=m_dropped,
    )
    features = build_features(telemetry, scaler, sample.num_bins)
    return dataclasses.replace(
        sample,
        features=features,
        m_max=m_max,
        m_sent=m_sent,
        m_received=m_received,
        m_dropped=m_dropped,
    )


def test_degraded_telemetry(benchmark, datasets, trained_models, results_dir):
    _, _, test = datasets
    kal = trained_models["kal"]
    enforcer = ConstraintEnforcer(test.switch_config)
    rng = np.random.default_rng(0)

    scenarios = {
        "clean": dict(lanz_threshold=0, snmp_loss=0.0),
        "LANZ thr=5": dict(lanz_threshold=5, snmp_loss=0.0),
        "LANZ thr=20": dict(lanz_threshold=20, snmp_loss=0.0),
        "SNMP loss 20%": dict(lanz_threshold=0, snmp_loss=0.2),
    }

    def run_all():
        table = {}
        for name, kwargs in scenarios.items():
            mae = []
            satisfied = 0
            infeasible = 0
            for sample in test.samples:
                degraded = _degrade_sample(sample, test.scaler, rng=rng, **kwargs)
                try:
                    imputed = enforcer.enforce(kal.impute(degraded), degraded)
                except Exception:
                    infeasible += 1
                    continue
                report = check_constraints(imputed, degraded, test.switch_config)
                satisfied += report.satisfied
                mae.append(float(np.abs(imputed - sample.target_raw).mean()))
            table[name] = dict(
                mae=float(np.mean(mae)) if mae else float("nan"),
                satisfied=satisfied,
                infeasible=infeasible,
            )
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{values['mae']:.3f}",
            f"{values['satisfied']}/{len(test)}",
            str(values["infeasible"]),
        ]
        for name, values in table.items()
    ]
    save_result(
        results_dir,
        "robustness.txt",
        format_table(["telemetry", "MAE (pkts)", "consistent", "infeasible"], rows),
    )

    # Constraint satisfaction w.r.t. the given measurements stays exact
    # whenever enforcement is feasible, and the error degrades gracefully:
    # every degraded variant stays within 25% of the clean MAE.  (Mild
    # degradations can even *reduce* MAE slightly — thresholded LANZ maxima
    # stop the CEM from raising spurious small peaks — so a strict
    # clean-is-best ordering is not asserted.)
    assert table["clean"]["satisfied"] == len(test)
    for name, values in table.items():
        if values["infeasible"] < len(test):
            assert values["mae"] <= table["clean"]["mae"] * 1.25, (name, values)
