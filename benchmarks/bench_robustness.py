"""Robustness benchmarks: degraded telemetry and the distribution-shift suite.

Not a paper artefact — §2.1's footnote notes that LANZ only reports
queues above a threshold, and real SNMP polls get lost.  Two benches:

* ``test_degraded_telemetry`` — feed the trained KAL model telemetry
  degraded by the shared injectors (:mod:`repro.robustness.degrade` —
  the same implementation the shift suite uses) and check the full
  method degrades gracefully while staying constraint-consistent with
  the measurements it was given;
* ``test_shift_suite`` — run the full
  :func:`repro.robustness.suite.run_robustness` grid and pin the result
  as ``BENCH_robustness.json``: per-method degradation curves across
  every shift axis, plus the machine-checked claim that
  ``Transformer+KAL+CEM`` degrades no faster than plain ``Transformer``.

The suite stays on the quick scenario in both profiles — its grid
multiplies simulation cost per point — with the paper profile buying
more training epochs instead.
"""

import numpy as np

from benchmarks.bench_schema import write_bench_json
from benchmarks.conftest import save_result
from repro.constraints import check_constraints
from repro.eval.report import format_table
from repro.imputation import ConstraintEnforcer
from repro.robustness.degrade import degrade_sample


def test_degraded_telemetry(benchmark, datasets, trained_models, results_dir):
    _, _, test = datasets
    kal = trained_models["kal"]
    enforcer = ConstraintEnforcer(test.switch_config)
    rng = np.random.default_rng(0)

    scenarios = {
        "clean": dict(lanz_threshold=0, snmp_loss=0.0),
        "LANZ thr=5": dict(lanz_threshold=5, snmp_loss=0.0),
        "LANZ thr=20": dict(lanz_threshold=20, snmp_loss=0.0),
        "SNMP loss 20%": dict(lanz_threshold=0, snmp_loss=0.2),
    }

    def run_all():
        table = {}
        for name, kwargs in scenarios.items():
            mae = []
            satisfied = 0
            infeasible = 0
            for sample in test.samples:
                degraded = degrade_sample(sample, test.scaler, rng=rng, **kwargs)
                try:
                    imputed = enforcer.enforce(kal.impute(degraded), degraded)
                except Exception:
                    infeasible += 1
                    continue
                report = check_constraints(imputed, degraded, test.switch_config)
                satisfied += report.satisfied
                mae.append(float(np.abs(imputed - sample.target_raw).mean()))
            table[name] = dict(
                mae=float(np.mean(mae)) if mae else float("nan"),
                satisfied=satisfied,
                infeasible=infeasible,
            )
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{values['mae']:.3f}",
            f"{values['satisfied']}/{len(test)}",
            str(values["infeasible"]),
        ]
        for name, values in table.items()
    ]
    save_result(
        results_dir,
        "robustness.txt",
        format_table(["telemetry", "MAE (pkts)", "consistent", "infeasible"], rows),
    )

    # Constraint satisfaction w.r.t. the given measurements stays exact
    # whenever enforcement is feasible, and the error degrades gracefully:
    # every degraded variant stays within 25% of the clean MAE.  (Mild
    # degradations can even *reduce* MAE slightly — thresholded LANZ maxima
    # stop the CEM from raising spurious small peaks — so a strict
    # clean-is-best ordering is not asserted.)
    assert table["clean"]["satisfied"] == len(test)
    for name, values in table.items():
        if values["infeasible"] < len(test):
            assert values["mae"] <= table["clean"]["mae"] * 1.25, (name, values)


def test_shift_suite(benchmark, bench_profile, results_dir):
    from repro.robustness.config import RobustnessConfig
    from repro.robustness.suite import bench_payload, run_robustness

    # Quick profile = the pinned default config, so a CI run regenerates
    # BENCH_robustness.json byte-comparable to the committed artifact.
    config = (
        RobustnessConfig(epochs=10)
        if bench_profile == "paper"
        else RobustnessConfig()
    )

    result = benchmark.pedantic(
        lambda: run_robustness(config), rounds=1, iterations=1
    )

    save_result(results_dir, "robustness_suite.txt", result.render())
    timings, metrics = bench_payload(result)
    path = write_bench_json(
        "robustness", config=config, timings=timings, metrics=metrics
    )
    print(f"wrote {path}")

    # The pinned claim: on every axis the full method's worst absolute
    # MAE increase is no larger than plain ML's (within tolerance).
    assert metrics["claim"]["holds"], metrics["claim"]
    # Coverage: >= 4 methods, all 5 axes, >= 2 points per axis curve.
    assert len(metrics["methods"]) >= 4
    assert set(metrics["axes"]) == {"load", "burst", "buffer", "lanz", "snmp"}
    for axis, curves in metrics["curves"].items():
        for method, points in curves.items():
            assert len(points) >= 2, (axis, method)
