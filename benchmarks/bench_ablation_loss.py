"""Ablation: EMD vs MSE training loss (§4's design choice).

The paper: "We use EMD as our loss function as opposed to MSE because it
improves the accuracy of the model in locating bursts...  MSE encourages
the model to find averages of plausible solutions that are overly smooth
and is disadvantageous for bursts."  This ablation trains the same
transformer with both losses and compares burst-location quality.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.downstream import DownstreamReport, evaluate_downstream
from repro.eval.report import format_table
from repro.imputation.trainer import Trainer, TrainerConfig
from repro.imputation.transformer_imputer import TransformerConfig, TransformerImputer


def _train(datasets, table1_config, loss):
    train, val, _ = datasets
    model = TransformerImputer(
        TransformerConfig(
            num_features=train.num_features,
            num_queues=train.num_queues,
            d_model=table1_config.d_model,
            num_heads=table1_config.num_heads,
            num_layers=table1_config.num_layers,
            d_ff=table1_config.d_ff,
        ),
        train.scaler,
        seed=table1_config.seed,
    )
    trainer = Trainer(
        model,
        train,
        TrainerConfig(
            epochs=table1_config.epochs,
            batch_size=table1_config.batch_size,
            learning_rate=table1_config.learning_rate,
            loss=loss,
            seed=table1_config.seed,
        ),
        val=val,
    )
    trainer.train()
    return model


def test_emd_vs_mse(benchmark, datasets, table1_config, results_dir):
    _, _, test = datasets

    def run_ablation():
        return {loss: _train(datasets, table1_config, loss) for loss in ("emd", "mse")}

    models = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    stats = {}
    for loss, model in models.items():
        reports = [
            evaluate_downstream(model.impute(s), s.target_raw, table1_config.burst_threshold)
            for s in test.samples
        ]
        averaged = DownstreamReport.average(reports)
        smoothness = float(
            np.mean([np.abs(np.diff(model.impute(s), axis=1)).mean() for s in test.samples[:4]])
        )
        truth_smoothness = float(
            np.mean([np.abs(np.diff(s.target_raw.astype(float), axis=1)).mean() for s in test.samples[:4]])
        )
        stats[loss] = dict(
            burst_detection=averaged.burst_detection,
            burst_height=averaged.burst_height,
            empty_queue=averaged.empty_queue,
            smoothness=smoothness,
            truth_smoothness=truth_smoothness,
        )

    rows = [
        [key] + [f"{stats[loss][key]:.3f}" for loss in ("emd", "mse")]
        for key in ("burst_detection", "burst_height", "empty_queue", "smoothness")
    ]
    table = format_table(["metric", "EMD", "MSE"], rows)
    note = (
        f"\nground-truth step-to-step variation: {stats['emd']['truth_smoothness']:.3f}"
        "\n(an over-smooth model has much lower 'smoothness' than the truth)"
    )
    save_result(results_dir, "ablation_loss.txt", table + note)

    # Shape: the MSE model is smoother (flatter) than the EMD model — the
    # over-averaging behaviour the paper calls out.
    assert stats["mse"]["smoothness"] <= stats["emd"]["smoothness"] + 1e-9
