"""Regenerates Fig. 4: one incident imputed by every method (panels a-d).

Benchmarks per-window inference latency of the full method and writes an
ASCII rendition of the four panels.  Shape expectations: (a) IterImputer
connects the dots, (b) the transformer finds the burst's location but not
its peak, (c) +KAL approaches the known max, (d) +KAL+CEM matches the max
and the samples exactly.
"""

from benchmarks.conftest import save_result
from repro.constraints import check_constraints
from repro.eval.figures import fig4_data
from repro.eval.report import render_series
from repro.imputation import ConstraintEnforcer, IterativeImputer


def test_fig4_methods(benchmark, datasets, trained_models, results_dir):
    _, _, test = datasets
    enforcer = ConstraintEnforcer(test.switch_config)
    iterative = IterativeImputer()
    kal = trained_models["kal"]
    plain = trained_models["plain"]

    def full_method(sample):
        return enforcer.enforce(kal.impute(sample), sample)

    methods = {
        "a_IterativeImputer": iterative.impute,
        "b_Transformer": plain.impute,
        "c_Transformer_KAL": kal.impute,
        "d_Transformer_KAL_CEM": full_method,
    }
    data = fig4_data(test, methods)
    sample = test[data.window]

    # Benchmark the full method's per-window latency (the paper's CEM takes
    # ~1.47 s with Z3; the combinatorial projection is far cheaper).
    benchmark(full_method, sample)

    lines = [
        f"window {data.window}, queue {data.queue} "
        f"(LANZ max {data.max_per_interval.max():.0f} pkts)",
        "",
        "ground truth:",
        render_series(data.ground_truth, height=6, width=100),
    ]
    for name, series in data.series.items():
        lines += ["", f"{name}:", render_series(series, height=6, width=100)]

    save_result(results_dir, "fig4_methods.txt", "\n".join(lines))

    # Panel-d property: the enforced output matches max and samples exactly.
    corrected = full_method(sample)
    report = check_constraints(corrected, sample, test.switch_config)
    assert report.satisfied
    # Panel-b/c property: raw model output generally misses exact
    # consistency (finite training).
    raw_report = check_constraints(plain.impute(sample), sample, test.switch_config)
    assert (
        raw_report.max_error + raw_report.periodic_error + raw_report.sent_error > 0
    )
